package server

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"symmeter/internal/transport"
)

// handlerFunc adapts a function to QueryHandler for stub handlers — the
// real executor (query.Engine) lives a package up the import graph, so
// in-package tests script the handler and test the session machinery.
type handlerFunc func(req transport.QueryRequest, res *transport.QueryResult) error

func (f handlerFunc) ServeQuery(req transport.QueryRequest, res *transport.QueryResult) error {
	return f(req, res)
}

// echoHandler answers every request with Count = MeterID — enough to check
// dispatch, correlation and encoding without a store.
func echoHandler(req transport.QueryRequest, res *transport.QueryResult) error {
	*res = transport.QueryResult{ID: req.ID, Op: transport.OpCount, Count: req.MeterID}
	return nil
}

// startQueryService spins up a service with the given handler on an
// ephemeral port.
func startQueryService(t *testing.T, cfg Config, h QueryHandler) (*Service, string) {
	t.Helper()
	svc := New(cfg)
	if h != nil {
		svc.SetQueryHandler(h)
	}
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc, addr.String()
}

// sendQuery writes one well-formed request frame.
func sendQuery(t *testing.T, conn net.Conn, req transport.QueryRequest) {
	t.Helper()
	if _, err := conn.Write(transport.AppendQueryRequestFrame(nil, req)); err != nil {
		t.Fatal(err)
	}
}

// readResponse reads and decodes one response frame.
func readResponse(t *testing.T, fr *transport.FrameReader, res *transport.QueryResult) error {
	t.Helper()
	typ, payload, err := fr.Next()
	if err != nil {
		t.Fatalf("reading response frame: %v", err)
	}
	return transport.DecodeQueryResponse(typ, payload, res)
}

// TestQuerySessionPipelined sends several requests down one connection and
// checks each comes back correlated, then ends the session orderly with 'E'.
func TestQuerySessionPipelined(t *testing.T) {
	svc, addr := startQueryService(t, Config{Shards: 2}, handlerFunc(echoHandler))
	conn := rawConn(t, addr)
	const n = 8
	for i := uint64(1); i <= n; i++ {
		sendQuery(t, conn, transport.QueryRequest{ID: i, Op: transport.OpCount, MeterID: i * 10, T0: 0, T1: 100})
	}
	fr := transport.NewFrameReader(conn)
	seen := make(map[uint64]uint64, n)
	var res transport.QueryResult
	for i := 0; i < n; i++ {
		if err := readResponse(t, fr, &res); err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		seen[res.ID] = res.Count
	}
	for i := uint64(1); i <= n; i++ {
		if seen[i] != i*10 {
			t.Fatalf("response for id %d = %d, want %d", i, seen[i], i*10)
		}
	}
	writeRawFrame(t, conn, transport.FrameEnd, 0, nil)
	expectClosed(t, conn)

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := svc.Stats()
		if st.ActiveQueries == 0 && st.QuerySessions == 1 {
			if st.Sessions != 0 {
				t.Fatalf("query session counted as ingest: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query session never finished: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if errs := svc.SessionErrors(); len(errs) != 0 {
		t.Fatalf("session errors: %v", errs)
	}
}

// TestQueryConcurrencyBounded proves per-connection backpressure: with a
// concurrency bound of 2 and every request blocked in the handler, at most
// 2 requests are ever executing no matter how many the client pipelines.
func TestQueryConcurrencyBounded(t *testing.T) {
	const bound = 2
	var inflight, maxInflight atomic.Int64
	release := make(chan struct{})
	blocking := handlerFunc(func(req transport.QueryRequest, res *transport.QueryResult) error {
		cur := inflight.Add(1)
		for {
			m := maxInflight.Load()
			if cur <= m || maxInflight.CompareAndSwap(m, cur) {
				break
			}
		}
		<-release
		inflight.Add(-1)
		*res = transport.QueryResult{ID: req.ID, Op: transport.OpCount}
		return nil
	})
	_, addr := startQueryService(t, Config{Shards: 2, QueryConcurrency: bound}, blocking)
	conn := rawConn(t, addr)
	const n = 6
	for i := uint64(1); i <= n; i++ {
		sendQuery(t, conn, transport.QueryRequest{ID: i, Op: transport.OpCount, T0: 0, T1: 1})
	}
	// Wait for the pool to saturate, then give extra requests every chance
	// to (incorrectly) start executing.
	deadline := time.Now().Add(5 * time.Second)
	for inflight.Load() < bound {
		if time.Now().After(deadline) {
			t.Fatalf("pool never saturated: inflight = %d", inflight.Load())
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	if got := maxInflight.Load(); got != bound {
		t.Fatalf("max in-flight = %d, want %d", got, bound)
	}
	close(release)
	fr := transport.NewFrameReader(conn)
	var res transport.QueryResult
	for i := 0; i < n; i++ {
		if err := readResponse(t, fr, &res); err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
	}
	if got := maxInflight.Load(); got != bound {
		t.Fatalf("max in-flight after drain = %d, want %d", got, bound)
	}
}

// TestQueryMalformedRequest: a truncated 'Q' payload still gets a typed
// error response addressed to the extractable id, then the session dies.
func TestQueryMalformedRequest(t *testing.T) {
	svc, addr := startQueryService(t, Config{Shards: 2}, handlerFunc(echoHandler))
	conn := rawConn(t, addr)
	full := transport.AppendQueryRequestFrame(nil, transport.QueryRequest{ID: 77, Op: transport.OpSum, T0: 0, T1: 1})
	// Deliver only the first 11 payload bytes (version|op|flags|id): enough
	// to extract the id, not enough to be a request.
	writeRawFrame(t, conn, transport.FrameQuery, 11, full[5:16])

	fr := transport.NewFrameReader(conn)
	var res transport.QueryResult
	err := readResponse(t, fr, &res)
	if res.ID != 77 {
		t.Fatalf("error response id = %d, want 77", res.ID)
	}
	var qe *transport.QueryError
	if !errors.As(err, &qe) || qe.Code != transport.QErrBadRequest {
		t.Fatalf("err = %v, want QErrBadRequest", err)
	}
	waitSessionErr(t, svc, transport.ErrBadQueryFrame)
	expectClosed(t, conn)
}

// TestQueryVersionMismatch: a request from a future protocol version is
// answered with QErrVersion, not guessed at.
func TestQueryVersionMismatch(t *testing.T) {
	svc, addr := startQueryService(t, Config{Shards: 2}, handlerFunc(echoHandler))
	conn := rawConn(t, addr)
	full := transport.AppendQueryRequestFrame(nil, transport.QueryRequest{ID: 5, Op: transport.OpSum, T0: 0, T1: 1})
	full[5] = 99 // payload byte 0: version
	if _, err := conn.Write(full); err != nil {
		t.Fatal(err)
	}
	fr := transport.NewFrameReader(conn)
	var res transport.QueryResult
	err := readResponse(t, fr, &res)
	if res.ID != 5 || !errors.Is(err, transport.ErrQueryVersionMismatch) {
		t.Fatalf("id=%d err=%v", res.ID, err)
	}
	waitSessionErr(t, svc, transport.ErrQueryVersionMismatch)
	expectClosed(t, conn)
}

// TestQueryUnknownFrameKillsSession: an ingest frame mid-query-session is a
// protocol violation that tears the session down.
func TestQueryUnknownFrameKillsSession(t *testing.T) {
	svc, addr := startQueryService(t, Config{Shards: 2}, handlerFunc(echoHandler))
	conn := rawConn(t, addr)
	sendQuery(t, conn, transport.QueryRequest{ID: 1, Op: transport.OpCount, T0: 0, T1: 1})
	fr := transport.NewFrameReader(conn)
	var res transport.QueryResult
	if err := readResponse(t, fr, &res); err != nil || res.ID != 1 {
		t.Fatalf("first response: id=%d err=%v", res.ID, err)
	}
	writeRawFrame(t, conn, transport.FrameTable, 0, nil)
	waitSessionErr(t, svc, transport.ErrUnknownFrame)
	expectClosed(t, conn)
}

// TestQueryOversizedFrameRejected: a query frame header claiming more than
// MaxFrame is rejected from the header alone.
func TestQueryOversizedFrameRejected(t *testing.T) {
	svc, addr := startQueryService(t, Config{Shards: 2}, handlerFunc(echoHandler))
	conn := rawConn(t, addr)
	writeRawFrame(t, conn, transport.FrameQuery, transport.MaxFrame+1, nil)
	waitSessionErr(t, svc, transport.ErrFrameTooLarge)
	expectClosed(t, conn)
}

// TestQueryOnlyListenerRefusesIngest: the dedicated query listener serves
// queries and refuses ingest streams.
func TestQueryOnlyListenerRefusesIngest(t *testing.T) {
	svc := New(Config{Shards: 2})
	svc.SetQueryHandler(handlerFunc(echoHandler))
	qaddr, err := svc.ListenQuery("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })

	// Ingest handshake on the query port: refused, no meter registered.
	bad := rawConn(t, qaddr.String())
	if err := transport.WriteHandshake(bad, 3); err != nil {
		t.Fatal(err)
	}
	waitSessionErr(t, svc, transport.ErrUnknownFrame)
	expectClosed(t, bad)
	if _, ok := svc.Store().Snapshot(3); ok {
		t.Fatal("refused ingest stream still registered a meter")
	}

	// A query on the same port works.
	good := rawConn(t, qaddr.String())
	sendQuery(t, good, transport.QueryRequest{ID: 2, Op: transport.OpCount, MeterID: 40, T0: 0, T1: 1})
	fr := transport.NewFrameReader(good)
	var res transport.QueryResult
	if err := readResponse(t, fr, &res); err != nil || res.Count != 40 {
		t.Fatalf("query on query port: count=%d err=%v", res.Count, err)
	}
}

// TestQueryWithoutHandler: query connections on a service with no handler
// installed get a typed internal error instead of a hang or a silent close.
func TestQueryWithoutHandler(t *testing.T) {
	_, addr := startQueryService(t, Config{Shards: 2}, nil)
	conn := rawConn(t, addr)
	sendQuery(t, conn, transport.QueryRequest{ID: 6, Op: transport.OpCount, T0: 0, T1: 1})
	fr := transport.NewFrameReader(conn)
	var res transport.QueryResult
	err := readResponse(t, fr, &res)
	var qe *transport.QueryError
	if res.ID != 6 || !errors.As(err, &qe) || qe.Code != transport.QErrInternal {
		t.Fatalf("id=%d err=%v", res.ID, err)
	}
}

// TestQueryClientKilledMidQuery kills the client while its request is still
// executing and checks the service reaps the session and keeps serving —
// the reaper path the CI smoke job exercises under -race.
func TestQueryClientKilledMidQuery(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	blocking := handlerFunc(func(req transport.QueryRequest, res *transport.QueryResult) error {
		started <- struct{}{}
		<-release
		*res = transport.QueryResult{ID: req.ID, Op: transport.OpCount}
		return nil
	})
	svc, addr := startQueryService(t, Config{Shards: 2}, blocking)

	conn := rawConn(t, addr)
	sendQuery(t, conn, transport.QueryRequest{ID: 1, Op: transport.OpCount, T0: 0, T1: 1})
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the handler")
	}
	conn.Close() // mid-query kill
	close(release)

	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().ActiveQueries != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("killed query session never reaped: %+v", svc.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The service still answers new connections.
	c2 := rawConn(t, addr)
	sendQuery(t, c2, transport.QueryRequest{ID: 2, Op: transport.OpCount, T0: 0, T1: 1})
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("service dead after mid-query kill")
	}
	fr := transport.NewFrameReader(c2)
	var res transport.QueryResult
	if err := readResponse(t, fr, &res); err != nil || res.ID != 2 {
		t.Fatalf("post-kill query: id=%d err=%v", res.ID, err)
	}
}
