// Package server is the concurrent aggregation service of the paper's §2
// deployment story at fleet scale: many smart meters connect over TCP, each
// handshakes with its meter ID, ships its locally-learned lookup table, and
// streams packed symbols; the server runs one session goroutine per meter
// and keeps the symbols packed at rest in a sharded block store, so both
// ingest and compressed-domain queries scale across cores.
//
// Layering: internal/transport owns the wire format (frames, handshake,
// Decoder); this package owns connection lifecycle (Service), per-meter
// decoding state (session) and the shared mutable state (Store — packed
// block chains, see block.go; lock-free published read path, see index.go).
// internal/query answers aggregates on top of the Store's Meter handles. A
// Fleet driver simulates M meters streaming concurrently over real TCP for
// load generation and benchmarks.
package server

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"unsafe"

	"symmeter/internal/symbolic"
)

// Typed store errors, distinguishable with errors.Is.
var (
	// ErrDuplicateMeter reports a session handshake for a meter ID that
	// already has a live session.
	ErrDuplicateMeter = errors.New("server: meter already has an active session")
	// ErrUnknownMeter reports a write for a meter that never registered.
	ErrUnknownMeter = errors.New("server: unknown meter")
	// ErrNoTable reports symbol data arriving for a meter before any
	// lookup table.
	ErrNoTable = errors.New("server: meter has no lookup table")
	// ErrDegraded reports an ingest refused because the durability layer is
	// degraded (storage wraps this sentinel with the failure's cause):
	// queries keep serving, but the server will not acknowledge writes it
	// cannot make durable. Travels the wire as transport.VerdictDegraded.
	ErrDegraded = errors.New("server: storage degraded: ingest refused")
	// ErrOverloaded reports an ingest batch refused by admission control:
	// the shard's in-flight ingest budget is exhausted. Retryable — nothing
	// was written, and the budget frees as in-flight batches commit.
	// Travels the wire as transport.VerdictOverloaded.
	ErrOverloaded = errors.New("server: ingest overloaded: shard budget exhausted")
	// ErrDraining reports a session refused because the service is shutting
	// down gracefully. Retryable against the restarted process. Travels the
	// wire as transport.VerdictDraining.
	ErrDraining = errors.New("server: draining: new sessions refused")
	// ErrSeqGap reports a sequenced batch that skips ahead of the meter's
	// high-water mark — a client bug (sequence numbers must be dense), torn
	// down loudly rather than committed out of order.
	ErrSeqGap = errors.New("server: sequence gap in sequenced ingest")
)

// ReconPoint is one reconstructed measurement: the symbol the meter sent
// plus the representative value it decodes to under the table that was
// current when it arrived.
type ReconPoint struct {
	T int64
	S symbolic.Symbol
	V float64
}

// MeterState is the aggregate view of one meter, materialized on demand by
// Snapshot — the store itself never holds reconstructed points.
type MeterState struct {
	ID uint64
	// Tables holds every lookup table received, in order; the last is
	// current.
	Tables []*symbolic.Table
	// Points is the reconstructed stream, in arrival order.
	Points []ReconPoint
	// Sessions counts completed-or-active sessions for this meter (a meter
	// may reconnect).
	Sessions int
}

// meterEntry guards one meter's state inside a shard. Symbols live in a
// chain of packed blocks; only the last block (the tail) is ever mutated,
// and the sealed prefix is republished through the atomic idx pointer at
// each seal (see index.go), so queries read everything but the tail without
// any lock at all.
type meterEntry struct {
	id       uint64
	tables   []*symbolic.Table
	sessions int
	active   bool
	// seq is the committed batch-sequence high-water mark for sequenced
	// ingest (0 = nothing committed). Guarded by the shard lock; only the
	// meter's single live session advances it.
	seq uint64

	blocks []block

	// idx is the RCU-published sealed-chain index: swapped by the writer at
	// seal time, loaded by readers without the shard lock. Never nil (points
	// at emptyIndex until the first seal).
	idx atomic.Pointer[sealedIndex]
	// dirFirst backs the published time directory: one firstT per sealed
	// block, appended at seal time; published indexes hold length-capped
	// prefixes of it.
	dirFirst []int64
	// tailFirstT is the live tail's first timestamp, or noTail while the
	// meter has no unsealed points. Stored before the tail's first push and
	// after the index swap, so VisitRange's double-load can prove a query
	// range cannot reach the tail without locking.
	tailFirstT atomic.Int64
	// total is the symbol count across all blocks, tail included: written
	// under the shard lock, loaded lock-free by TotalSymbols.
	total atomic.Int64

	// Arena capacity carved into new blocks so a Reserve'd meter appends
	// without allocating. pendingReserve parks a Reserve that arrived before
	// the first table (the arena is sized by the table's level). arenaBytes
	// accumulates every arena allocation at full size — carved regions stay
	// resident for the arena's lifetime whether or not their block was
	// trimmed, so MemoryFootprint counts slabs whole, never remainders.
	payloadArena   []byte
	histArena      []uint32
	idxArena       []sealedIndex
	arenaBytes     int64
	pendingReserve int

	// recycle is the previous tail's heap payload buffer, freed up when a
	// spill relocated that block's bytes into a segment file: the next tail
	// block reuses it, so a persistent meter reaches a steady state where
	// sealing allocates nothing and resident payload is bounded by one live
	// tail regardless of history length.
	recycle []byte
}

// tail returns the mutable last block, or nil when every block of the chain
// is sealed. The sealed prefix is exactly the published index's blocks, so
// the chain has a live tail iff it is one block longer than the index — which
// also holds for a freshly-restored meter, whose recovered blocks are all
// sealed (a naive "last block" rule would hand out a published, immutable
// block as the tail and corrupt it on the next append).
func (e *meterEntry) tail() *block {
	if len(e.blocks) == len(e.idx.Load().blocks) {
		return nil
	}
	return &e.blocks[len(e.blocks)-1]
}

// newBlock appends a fresh block for the given epoch, carving payload and
// histogram space from the reserve arena when available and falling back to
// the spill-recycled tail buffer before the allocator.
func (e *meterEntry) newBlock(epoch uint32, level, k int) *block {
	nb := blockBytes(level)
	var payload []byte
	payloadFromArena := len(e.payloadArena) >= nb
	if payloadFromArena {
		payload = e.payloadArena[:nb:nb]
		e.payloadArena = e.payloadArena[nb:]
	} else if cap(e.recycle) >= nb {
		payload = e.recycle[:nb:nb]
		clear(payload) // PackSymbolAt ORs bits in; the buffer must start zero
		e.recycle = nil
	} else {
		payload = make([]byte, nb)
	}
	var hist []uint32
	histFromArena := false
	if level <= maxHistLevel {
		if histFromArena = len(e.histArena) >= k; histFromArena {
			hist = e.histArena[:k:k]
			e.histArena = e.histArena[k:]
		} else {
			hist = make([]uint32, k)
		}
	}
	e.blocks = append(e.blocks, block{
		epoch:            epoch,
		level:            uint8(level),
		payload:          payload,
		hist:             hist,
		payloadFromArena: payloadFromArena,
		histFromArena:    histFromArena,
	})
	return &e.blocks[len(e.blocks)-1]
}

// idxMeta is the resident cost of one published index struct.
const idxMeta = int64(unsafe.Sizeof(sealedIndex{}))

// reserveLocked sizes the arenas, block slice, time directory and index
// arena for n more points under the meter's current table, so the whole
// append-and-seal-and-publish cycle runs allocation-free. When the store
// spills sealed payloads to a SealSink, the payload and histogram arenas are
// skipped: a spilled block's bytes live in a segment file, so a full-history
// payload slab would pin exactly the memory the spill path exists to evict
// (the recycled tail buffer makes steady-state sealing allocation-free
// instead).
func (e *meterEntry) reserveLocked(n int, persist bool) {
	table := e.tables[len(e.tables)-1]
	level, k := table.Level(), table.K()
	nb := (n+BlockCap-1)/BlockCap + 1
	if !persist {
		if need := nb * blockBytes(level); len(e.payloadArena) < need {
			e.payloadArena = make([]byte, need)
			e.arenaBytes += int64(need)
		}
		if level <= maxHistLevel {
			if need := nb * k; len(e.histArena) < need {
				e.histArena = make([]uint32, need)
				e.arenaBytes += 4 * int64(need)
			}
		}
	}
	if len(e.idxArena) < nb {
		e.idxArena = make([]sealedIndex, nb)
		e.arenaBytes += int64(nb) * idxMeta
	}
	e.blocks = slices.Grow(e.blocks, nb)
	e.dirFirst = slices.Grow(e.dirFirst, nb)
}

// shard is one lock domain of the store. The lock serializes writers (and
// the brief tail folds of readers); the published dir and each meter's
// published index serve everything else without it.
type shard struct {
	mu sync.RWMutex
	// dir is the published meter directory, swapped copy-on-write under mu
	// whenever a meter registers. Never nil (points at emptyShardDir).
	dir atomic.Pointer[shardDir]
	// queryLocks counts read-path shard-lock acquisitions (live-tail folds
	// and nothing else) — the measured basis for the "sealed-data queries
	// take zero locks" contract.
	queryLocks atomic.Int64
}

// meter returns the shard's entry for the ID, or nil. Safe with or without
// the shard lock: the lookup goes through the published directory.
func (sh *shard) meter(meterID uint64) *meterEntry {
	return sh.dir.Load().meters[meterID]
}

// SealedBlock is the exported form of one sealed packed block — what a
// SealSink receives at seal time and what Store.RestoreMeter accepts at
// recovery. Payload is the headerless packed symbol data trimmed to its used
// bytes; Hist is the per-symbol count summary or nil.
type SealedBlock struct {
	Epoch      int
	Level      int
	N          int
	FirstT     int64
	Stride     int64
	Sum        float64
	MinV, MaxV float64
	Payload    []byte
	Hist       []uint32
	// Spilled marks the payload as aliasing non-heap memory (an mmapped
	// segment region); MemoryFootprint then excludes it. Sinks that persist
	// a block and hand back an mmapped view set it implicitly; restores set
	// it to match where the recovered payload actually lives.
	Spilled bool
}

// SealSink persists blocks the moment they seal. SealedBlock is called under
// the meter's shard write lock, after the block's final point and before the
// sealed index republishes (the block is still invisible to lock-free
// readers), and returns the byte slice the store must adopt as the block's
// payload from then on — typically an mmapped region of the segment file the
// sink just wrote, which is what evicts sealed payloads from the heap.
// Returning blk.Payload itself keeps the block resident. An error fails the
// Append that triggered the seal; points already committed stay readable and
// the spill is retried on the meter's next append.
type SealSink interface {
	SealedBlock(meterID uint64, blk SealedBlock) ([]byte, error)
}

// Store is a sharded in-memory aggregation store. Meters are assigned to
// shards by a mixed hash of their ID; all state for one meter lives in one
// shard, so a session touches exactly one mutex and concurrent sessions on
// different shards never contend.
type Store struct {
	shards []shard
	// sink, when non-nil, receives every block at seal time (the durability
	// hook); set once before ingest via SetSealSink.
	sink SealSink
}

// SetSealSink installs the seal-time durability hook. It must be called
// before any session appends — the store does not retrofit existing sealed
// blocks into the sink.
func (s *Store) SetSealSink(sink SealSink) { s.sink = sink }

// NewStore returns a store with n shards (n < 1 is clamped to 1).
func NewStore(n int) *Store {
	if n < 1 {
		n = 1
	}
	s := &Store{shards: make([]shard, n)}
	for i := range s.shards {
		s.shards[i].dir.Store(&emptyShardDir)
	}
	return s
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// mix64 is the splitmix64 finalizer: sequential meter IDs (the common
// provisioning pattern) would otherwise land on sequential shards and, with
// shard counts sharing factors with the ID stride, pile onto a few locks.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardFor returns the shard index a meter ID maps to (exposed for tests
// and capacity planning).
func (s *Store) ShardFor(meterID uint64) int {
	return int(mix64(meterID) % uint64(len(s.shards)))
}

func (s *Store) shardOf(meterID uint64) *shard {
	return &s.shards[s.ShardFor(meterID)]
}

// Meter returns a lock-free handle to the meter's published state, and
// whether the meter exists. The lookup reads the shard's published
// directory — no lock is taken.
func (s *Store) Meter(meterID uint64) (Meter, bool) {
	sh := s.shardOf(meterID)
	e := sh.meter(meterID)
	if e == nil {
		return Meter{}, false
	}
	return Meter{e: e, sh: sh}, true
}

// ShardMeters returns the published meter handles of one shard, in
// registration order, without locking. The slice is shared and read-only;
// callers must not mutate or retain it past the query.
func (s *Store) ShardMeters(shardIdx int) []Meter {
	return s.shards[shardIdx].dir.Load().list
}

// QueryLockAcquisitions returns how many times the read path has taken a
// shard lock (live-tail folds) since the store was created. Queries that
// cover only sealed data leave it untouched — the measurable form of the
// lock-free read contract.
func (s *Store) QueryLockAcquisitions() int64 {
	var n int64
	for i := range s.shards {
		n += s.shards[i].queryLocks.Load()
	}
	return n
}

// StartSession registers a live session for the meter, creating its state
// on first contact. A second concurrent session for the same ID is refused
// with ErrDuplicateMeter — the wire protocol has no way to interleave two
// streams for one meter, so the newcomer must be an impostor or a stale
// reconnect racing its predecessor.
func (s *Store) StartSession(meterID uint64) error {
	sh := s.shardOf(meterID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.meter(meterID)
	if e == nil {
		e = &meterEntry{id: meterID}
		e.idx.Store(&emptyIndex)
		e.tailFirstT.Store(noTail)
		// Republish the shard directory with the newcomer: the map is copied
		// (concurrent lock-free lookups may be reading the old one), the list
		// extends append-only.
		old := sh.dir.Load()
		m := make(map[uint64]*meterEntry, len(old.meters)+1)
		for id, me := range old.meters {
			m[id] = me
		}
		m[meterID] = e
		sh.dir.Store(&shardDir{meters: m, list: append(old.list, Meter{e: e, sh: sh})})
	}
	if e.active {
		return fmt.Errorf("%w: %d", ErrDuplicateMeter, meterID)
	}
	e.active = true
	e.sessions++
	return nil
}

// EndSession releases the meter's live-session slot. Accumulated state is
// kept: an abrupt disconnect loses at most the batch in flight, never the
// shard.
func (s *Store) EndSession(meterID uint64) {
	sh := s.shardOf(meterID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e := sh.meter(meterID); e != nil {
		e.active = false
	}
}

// LastSeq reports the meter's committed batch-sequence high-water mark, or
// zero for a meter that never committed a sequenced batch (or is unknown).
// It is the handshake-reply value a reconnecting sequenced client uses to
// decide which pending batches to replay.
func (s *Store) LastSeq(meterID uint64) uint64 {
	sh := s.shardOf(meterID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e := sh.meter(meterID); e != nil {
		return e.seq
	}
	return 0
}

// seqCheck classifies seq against the meter's high-water mark: committed
// already (dup), next in line (proceed), or a gap (client bug, loud error).
func (s *Store) seqCheck(meterID, seq uint64) (dup bool, err error) {
	sh := s.shardOf(meterID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.meter(meterID)
	if e == nil {
		return false, fmt.Errorf("%w: %d", ErrUnknownMeter, meterID)
	}
	if seq <= e.seq {
		return true, nil
	}
	if seq != e.seq+1 {
		return false, fmt.Errorf("%w: meter %d got seq %d with high-water mark %d", ErrSeqGap, meterID, seq, e.seq)
	}
	return false, nil
}

// seqAdvance commits seq as the meter's new high-water mark.
func (s *Store) seqAdvance(meterID, seq uint64) {
	sh := s.shardOf(meterID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e := sh.meter(meterID); e != nil && seq > e.seq {
		e.seq = seq
	}
}

// PushTableSeq is PushTable for sequenced sessions: seq == hwm+1 commits
// the table and advances the mark, seq <= hwm is suppressed as a duplicate
// (dup=true, nothing written, still to be acked), and a gap is refused.
func (s *Store) PushTableSeq(meterID, seq uint64, t *symbolic.Table) (bool, error) {
	dup, err := s.seqCheck(meterID, seq)
	if dup || err != nil {
		return dup, err
	}
	if err := s.PushTable(meterID, t); err != nil {
		return false, err
	}
	s.seqAdvance(meterID, seq)
	return false, nil
}

// AppendSeq is Append for sequenced sessions, with the same duplicate and
// gap semantics as PushTableSeq. The high-water mark advances only after
// the whole batch commits, so a failed append leaves the mark untouched
// and the client's retry of the same seq is not misread as a duplicate.
func (s *Store) AppendSeq(meterID, seq uint64, pts []symbolic.SymbolPoint) (int, bool, error) {
	dup, err := s.seqCheck(meterID, seq)
	if dup || err != nil {
		return 0, dup, err
	}
	n, err := s.Append(meterID, pts)
	if err != nil {
		return n, false, err
	}
	s.seqAdvance(meterID, seq)
	return n, false, nil
}

// PushTable records a new lookup table for the meter, opening a new epoch:
// the current tail block is left to seal itself on the next append.
func (s *Store) PushTable(meterID uint64, t *symbolic.Table) error {
	sh := s.shardOf(meterID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.meter(meterID)
	if e == nil {
		return fmt.Errorf("%w: %d", ErrUnknownMeter, meterID)
	}
	e.tables = append(e.tables, t)
	if e.pendingReserve > 0 {
		e.reserveLocked(e.pendingReserve, s.sink != nil)
		e.pendingReserve = 0
	}
	return nil
}

// ErrBadSymbol reports a symbol whose level does not match the meter's
// current lookup table, making it undecodable.
var ErrBadSymbol = errors.New("server: symbol level does not match table")

// Append commits a decoded symbol batch into the meter's packed block chain
// under its current table epoch. It returns how many points were stored.
//
// The whole batch is validated against the table before any point is
// committed, so a validation error never leaves a partially-appended batch.
// The one exception is an I/O error from the seal sink mid-batch: points
// committed before the failing seal stay readable (the return count says how
// many), so a caller must resume from that count rather than retry the whole
// batch. Each point
// costs one bit-pack into the tail block plus O(1) summary updates; a point
// that breaks the tail's timestamp stride (a gap) or arrives under a new
// epoch seals the tail, publishes the sealed index (the single point where
// the lock-free read path learns about new data), and opens a fresh block.
func (s *Store) Append(meterID uint64, pts []symbolic.SymbolPoint) (int, error) {
	sh := s.shardOf(meterID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.meter(meterID)
	if e == nil {
		return 0, fmt.Errorf("%w: %d", ErrUnknownMeter, meterID)
	}
	if len(e.tables) == 0 {
		return 0, fmt.Errorf("%w: %d", ErrNoTable, meterID)
	}
	epoch := uint32(len(e.tables) - 1)
	table := e.tables[epoch]
	level := table.Level()
	for i := range pts {
		if pts[i].S.Level() != level {
			return 0, fmt.Errorf("%w: point %d has level %d, table has level %d",
				ErrBadSymbol, i, pts[i].S.Level(), level)
		}
	}
	values := table.ReconstructionValues()
	k := table.K()
	tail := e.tail()
	for i, sp := range pts {
		if tail == nil || !tail.accepts(sp.T, epoch) {
			if tail != nil {
				// Trim (or spill to the durable sink) before publishing: a
				// block must never mutate after the index that contains it
				// is visible to lock-free readers.
				if err := s.sealTail(e, tail); err != nil {
					// The spill failed mid-batch. Points pushed so far are
					// valid and stay readable (the sealed-but-unpublished
					// block is still served as the locked tail); account
					// them and surface the I/O error to the session.
					e.total.Add(int64(i))
					return i, err
				}
				e.publish()
			}
			tail = e.newBlock(epoch, level, k)
			// Publish the new tail's start before its first point lands, so
			// a lock-free reader that proves a stable index generation can
			// trust this bound (see Meter.VisitRange).
			e.tailFirstT.Store(sp.T)
		}
		idx := uint32(sp.S.Index())
		tail.push(sp.T, idx, values[idx])
	}
	e.total.Add(int64(len(pts)))
	return len(pts), nil
}

// sealTail finalizes a block that is about to get a successor: through the
// durable sink when one is installed (the payload relocates into a segment
// file and the heap buffer recycles to the next tail), by in-place trimming
// otherwise. Caller holds the shard write lock.
func (s *Store) sealTail(e *meterEntry, tail *block) error {
	if s.sink == nil {
		tail.seal()
		return nil
	}
	return e.spill(s.sink, tail)
}

// spill hands a just-sealed block to the sink and adopts the returned bytes
// as the block's payload. On success the old heap payload buffer is parked
// for reuse by the next tail, and an underfull block's histogram is dropped
// exactly as seal() would drop it (the sink already persisted it; queries
// kernel-scan partial blocks either way).
func (e *meterEntry) spill(sink SealSink, b *block) error {
	used := (int(b.n)*int(b.level) + 7) / 8
	adopted, err := sink.SealedBlock(e.id, SealedBlock{
		Epoch:   int(b.epoch),
		Level:   int(b.level),
		N:       int(b.n),
		FirstT:  b.firstT,
		Stride:  b.stride,
		Sum:     b.sum,
		MinV:    b.minV,
		MaxV:    b.maxV,
		Payload: b.payload[:used:used],
		Hist:    b.hist,
	})
	if err != nil {
		return err
	}
	if len(adopted) < used {
		return fmt.Errorf("server: seal sink returned %d payload bytes, need %d", len(adopted), used)
	}
	// A sink without a mapping may hand the heap payload straight back; only
	// a genuinely relocated payload frees the old buffer for recycling (and
	// only then is the block's storage off-heap).
	if relocated := &adopted[0] != &b.payload[0]; relocated {
		if !b.payloadFromArena && cap(b.payload) > cap(e.recycle) {
			e.recycle = b.payload[:0]
		}
		b.payload = adopted[:used:used]
		b.payloadFromArena = false
		b.spilled = true
	} else {
		// The bytes stayed on the heap (no mapping available): trim them
		// like any other seal.
		b.seal()
	}
	if !b.histFromArena && b.hist != nil && int(b.n) < len(b.hist) {
		b.hist = nil
	}
	return nil
}

// Reserve pre-allocates block capacity for at least n points for the meter —
// capacity planning for ingest bursts: a session that knows how many windows
// a replayed day will produce makes every subsequent Append allocation-free.
// A Reserve arriving before the meter's first table (the session handshake
// order) is parked and applied when the table lands, since the arena is
// sized by the table's symbol level.
func (s *Store) Reserve(meterID uint64, n int) error {
	sh := s.shardOf(meterID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.meter(meterID)
	if e == nil {
		return fmt.Errorf("%w: %d", ErrUnknownMeter, meterID)
	}
	if len(e.tables) == 0 {
		if n > e.pendingReserve {
			e.pendingReserve = n
		}
		return nil
	}
	e.reserveLocked(n, s.sink != nil)
	return nil
}

// RestoreMeter installs a recovered meter: its table history and its sealed
// block chain (typically read back from durable segment files, payloads
// aliasing mmapped regions), publishing the sealed index so queries serve
// the meter immediately and with the exact pruning the live path would have.
// It is the recovery-time counterpart of StartSession + PushTable + Append
// and must run before any live traffic for the meter; blocks must be in
// their original seal order. Every field is validated against the table
// history — recovery reads untrusted on-disk bytes, and a corrupt block must
// fail loudly here rather than panic in a query kernel.
func (s *Store) RestoreMeter(meterID uint64, tables []*symbolic.Table, blocks []SealedBlock) error {
	sh := s.shardOf(meterID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.meter(meterID) != nil {
		return fmt.Errorf("server: meter %d already registered; restore must precede ingest", meterID)
	}
	e := &meterEntry{id: meterID, tables: append([]*symbolic.Table(nil), tables...)}
	e.tailFirstT.Store(noTail)
	total := 0
	ordered := true
	for i, rb := range blocks {
		if err := validateRestored(rb, e.tables); err != nil {
			return fmt.Errorf("server: restore meter %d block %d: %w", meterID, i, err)
		}
		used := (rb.N*rb.Level + 7) / 8
		e.blocks = append(e.blocks, block{
			epoch:   uint32(rb.Epoch),
			level:   uint8(rb.Level),
			n:       uint32(rb.N),
			firstT:  rb.FirstT,
			stride:  rb.Stride,
			sum:     rb.Sum,
			minV:    rb.MinV,
			maxV:    rb.MaxV,
			payload: rb.Payload[:used:used],
			hist:    rb.Hist,
			spilled: rb.Spilled,
		})
		e.dirFirst = append(e.dirFirst, rb.FirstT)
		total += rb.N
		if i > 0 && e.blocks[i-1].lastT() > rb.FirstT {
			ordered = false
		}
	}
	e.total.Store(int64(total))
	if len(e.blocks) == 0 {
		e.idx.Store(&emptyIndex)
	} else {
		e.idx.Store(&sealedIndex{
			tables:  e.tables,
			blocks:  e.blocks[:len(e.blocks):len(e.blocks)],
			firstTs: e.dirFirst[:len(e.blocks):len(e.blocks)],
			total:   total,
			ordered: ordered,
		})
	}
	old := sh.dir.Load()
	m := make(map[uint64]*meterEntry, len(old.meters)+1)
	for id, me := range old.meters {
		m[id] = me
	}
	m[meterID] = e
	sh.dir.Store(&shardDir{meters: m, list: append(old.list, Meter{e: e, sh: sh})})
	return nil
}

// validateRestored checks one recovered block against the meter's table
// history: referenced epoch, matching level, sane point count, payload large
// enough for the packed bits, a stride the live accepts() path could have
// produced (overflow-checked — timestamps are disk input here, wire input
// there, equally untrusted), and a histogram consistent with the count.
func validateRestored(rb SealedBlock, tables []*symbolic.Table) error {
	if rb.Epoch < 0 || rb.Epoch >= len(tables) {
		return fmt.Errorf("epoch %d outside table history of %d", rb.Epoch, len(tables))
	}
	table := tables[rb.Epoch]
	if rb.Level != table.Level() {
		return fmt.Errorf("level %d does not match epoch table level %d", rb.Level, table.Level())
	}
	if rb.N < 1 || rb.N > BlockCap {
		return fmt.Errorf("point count %d outside [1,%d]", rb.N, BlockCap)
	}
	if need := (rb.N*rb.Level + 7) / 8; len(rb.Payload) < need {
		return fmt.Errorf("payload of %d bytes, need %d", len(rb.Payload), need)
	}
	if rb.N == 1 {
		if rb.Stride != 0 {
			return fmt.Errorf("single-point block with stride %d", rb.Stride)
		}
	} else if got, ok := strideFor(rb.FirstT, rb.FirstT+rb.Stride); !ok || got != rb.Stride {
		return fmt.Errorf("stride %d from %d fails progression bounds", rb.Stride, rb.FirstT)
	}
	if rb.Hist != nil {
		if len(rb.Hist) != table.K() {
			return fmt.Errorf("histogram of %d lanes, table has k=%d", len(rb.Hist), table.K())
		}
		var sum uint64
		for _, c := range rb.Hist {
			sum += uint64(c)
		}
		if sum != uint64(rb.N) {
			return fmt.Errorf("histogram mass %d does not match point count %d", sum, rb.N)
		}
	}
	return nil
}

// Snapshot returns a copy of one meter's state with the point stream
// reconstructed from its packed blocks. Only the chain header, the table
// list and the mutable tail block are copied under the shard lock; the
// actual reconstruction — the expensive part — runs after the lock is
// released, reading the sealed (immutable) blocks directly. A slow reader
// therefore no longer stalls ingest on the shard.
func (s *Store) Snapshot(meterID uint64) (MeterState, bool) {
	sh := s.shardOf(meterID)
	sh.mu.RLock()
	e := sh.meter(meterID)
	if e == nil {
		sh.mu.RUnlock()
		return MeterState{}, false
	}
	st := MeterState{ID: e.id, Sessions: e.sessions}
	st.Tables = append([]*symbolic.Table(nil), e.tables...)
	blocks := e.blocks
	total := int(e.total.Load())
	var tailCopy block
	if len(blocks) > 0 {
		// The tail keeps growing after we unlock; freeze its summary and the
		// payload bytes written so far.
		tailCopy = blocks[len(blocks)-1]
		tailCopy.payload = append([]byte(nil), tailCopy.payload...)
	}
	sh.mu.RUnlock()

	st.Points = make([]ReconPoint, 0, total)
	var scratch []symbolic.Symbol
	for i := 0; i+1 < len(blocks); i++ {
		st.Points, scratch = appendBlockPoints(st.Points, &blocks[i], st.Tables, scratch)
	}
	if len(blocks) > 0 {
		st.Points, _ = appendBlockPoints(st.Points, &tailCopy, st.Tables, scratch)
	}
	return st, true
}

// appendBlockPoints reconstructs one block's points via the codec's
// sequential range decoder, reusing scratch across blocks.
func appendBlockPoints(dst []ReconPoint, b *block, tables []*symbolic.Table, scratch []symbolic.Symbol) ([]ReconPoint, []symbolic.Symbol) {
	values := tables[b.epoch].ReconstructionValues()
	scratch = symbolic.AppendUnpackRange(scratch[:0], b.payload, int(b.level), 0, int(b.n))
	for i, s := range scratch {
		dst = append(dst, ReconPoint{
			T: b.firstT + int64(i)*b.stride,
			S: s,
			V: values[s.Index()],
		})
	}
	return dst, scratch
}

// QueryMeter invokes fn for each non-empty block of the meter in append
// order, under the shard read lock, and reports whether the meter exists.
// fn must be pure computation over the view — no blocking, no retaining of
// the view's slices (see BlockView). This is the full-chain compatibility
// walk; range queries should go through Meter.VisitRange, which reads
// sealed data lock-free and prunes via the time directory.
func (s *Store) QueryMeter(meterID uint64, fn func(BlockView)) bool {
	sh := s.shardOf(meterID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e := sh.meter(meterID)
	if e == nil {
		return false
	}
	for i := range e.blocks {
		if e.blocks[i].n == 0 {
			continue
		}
		fn(e.view(&e.blocks[i]))
	}
	return true
}

// view builds the visitor view for a block under the meter's live tables
// (callers hold the shard lock).
func (e *meterEntry) view(b *block) BlockView {
	return viewOf(b, e.tables)
}

// Meters returns the IDs of every meter the store has seen, in no
// particular order, reading only the published shard directories — no shard
// lock is taken.
func (s *Store) Meters() []uint64 {
	var ids []uint64
	for i := range s.shards {
		for _, m := range s.shards[i].dir.Load().list {
			ids = append(ids, m.ID())
		}
	}
	return ids
}

// TotalSymbols returns the number of stored points across all meters,
// reading only published state — no shard lock is taken. Concurrent appends
// may or may not be included, exactly as with any racing counter read.
func (s *Store) TotalSymbols() int {
	total := 0
	for i := range s.shards {
		for _, m := range s.shards[i].dir.Load().list {
			total += m.TotalSymbols()
		}
	}
	return total
}

// MemoryFootprint returns the resident bytes attributable to point storage
// and the number of stored points — the measured basis for the
// bytes-per-point claim in BENCH_4. Reserve arenas (payload, histogram and
// index-struct slabs) are counted at their full allocated size (carved
// regions stay resident for the slab's lifetime, trimmed or not); blocks add
// their metadata plus any payload or histogram they own outside an arena —
// except spilled payloads, which alias mmapped segment files and cost page
// cache, not heap; the time directory adds 8 bytes per slot of its capacity
// and the spill-recycled tail buffer its capacity. Table and map overhead is
// excluded: both exist identically in any storage scheme.
func (s *Store) MemoryFootprint() (bytes, points int64) {
	const blockMeta = int64(unsafe.Sizeof(block{}))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, m := range sh.dir.Load().list {
			e := m.e
			points += e.total.Load()
			bytes += e.arenaBytes
			bytes += 8 * int64(cap(e.dirFirst))
			bytes += int64(cap(e.recycle))
			for j := range e.blocks {
				b := &e.blocks[j]
				bytes += blockMeta
				if !b.payloadFromArena && !b.spilled {
					bytes += int64(cap(b.payload))
				}
				if !b.histFromArena {
					bytes += 4 * int64(cap(b.hist))
				}
			}
		}
		sh.mu.RUnlock()
	}
	return bytes, points
}
