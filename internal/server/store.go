// Package server is the concurrent aggregation service of the paper's §2
// deployment story at fleet scale: many smart meters connect over TCP, each
// handshakes with its meter ID, ships its locally-learned lookup table, and
// streams packed symbols; the server runs one session goroutine per meter
// and writes reconstructed state into a sharded in-memory store so ingest
// scales across cores.
//
// Layering: internal/transport owns the wire format (frames, handshake,
// Decoder); this package owns connection lifecycle (Service), per-meter
// decoding state (session) and the shared mutable state (Store). A Fleet
// driver simulates M meters streaming concurrently over real TCP for load
// generation and benchmarks.
package server

import (
	"errors"
	"fmt"
	"slices"
	"sync"

	"symmeter/internal/symbolic"
)

// Typed store errors, distinguishable with errors.Is.
var (
	// ErrDuplicateMeter reports a session handshake for a meter ID that
	// already has a live session.
	ErrDuplicateMeter = errors.New("server: meter already has an active session")
	// ErrUnknownMeter reports a write for a meter that never registered.
	ErrUnknownMeter = errors.New("server: unknown meter")
	// ErrNoTable reports symbol data arriving for a meter before any
	// lookup table.
	ErrNoTable = errors.New("server: meter has no lookup table")
)

// ReconPoint is one reconstructed measurement: the symbol the meter sent
// plus the representative value it decodes to under the table that was
// current when it arrived.
type ReconPoint struct {
	T int64
	S symbolic.Symbol
	V float64
}

// MeterState is the aggregate view of one meter.
type MeterState struct {
	ID uint64
	// Tables holds every lookup table received, in order; the last is
	// current.
	Tables []*symbolic.Table
	// Points is the reconstructed stream, in arrival order.
	Points []ReconPoint
	// Sessions counts completed-or-active sessions for this meter (a meter
	// may reconnect).
	Sessions int
}

// meterEntry guards one meter's state inside a shard.
type meterEntry struct {
	state  MeterState
	active bool
}

// shard is one lock domain of the store.
type shard struct {
	mu     sync.RWMutex
	meters map[uint64]*meterEntry
}

// Store is a sharded in-memory aggregation store. Meters are assigned to
// shards by a mixed hash of their ID; all state for one meter lives in one
// shard, so a session touches exactly one mutex and concurrent sessions on
// different shards never contend.
type Store struct {
	shards []shard
}

// NewStore returns a store with n shards (n < 1 is clamped to 1).
func NewStore(n int) *Store {
	if n < 1 {
		n = 1
	}
	s := &Store{shards: make([]shard, n)}
	for i := range s.shards {
		s.shards[i].meters = make(map[uint64]*meterEntry)
	}
	return s
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// mix64 is the splitmix64 finalizer: sequential meter IDs (the common
// provisioning pattern) would otherwise land on sequential shards and, with
// shard counts sharing factors with the ID stride, pile onto a few locks.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardFor returns the shard index a meter ID maps to (exposed for tests
// and capacity planning).
func (s *Store) ShardFor(meterID uint64) int {
	return int(mix64(meterID) % uint64(len(s.shards)))
}

func (s *Store) shardOf(meterID uint64) *shard {
	return &s.shards[s.ShardFor(meterID)]
}

// StartSession registers a live session for the meter, creating its state
// on first contact. A second concurrent session for the same ID is refused
// with ErrDuplicateMeter — the wire protocol has no way to interleave two
// streams for one meter, so the newcomer must be an impostor or a stale
// reconnect racing its predecessor.
func (s *Store) StartSession(meterID uint64) error {
	sh := s.shardOf(meterID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.meters[meterID]
	if e == nil {
		e = &meterEntry{state: MeterState{ID: meterID}}
		sh.meters[meterID] = e
	}
	if e.active {
		return fmt.Errorf("%w: %d", ErrDuplicateMeter, meterID)
	}
	e.active = true
	e.state.Sessions++
	return nil
}

// EndSession releases the meter's live-session slot. Accumulated state is
// kept: an abrupt disconnect loses at most the batch in flight, never the
// shard.
func (s *Store) EndSession(meterID uint64) {
	sh := s.shardOf(meterID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e := sh.meters[meterID]; e != nil {
		e.active = false
	}
}

// PushTable records a new lookup table for the meter.
func (s *Store) PushTable(meterID uint64, t *symbolic.Table) error {
	sh := s.shardOf(meterID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.meters[meterID]
	if e == nil {
		return fmt.Errorf("%w: %d", ErrUnknownMeter, meterID)
	}
	e.state.Tables = append(e.state.Tables, t)
	return nil
}

// ErrBadSymbol reports a symbol whose level does not match the meter's
// current lookup table, making it undecodable.
var ErrBadSymbol = errors.New("server: symbol level does not match table")

// Append reconstructs a decoded symbol batch against the meter's current
// table and appends it. It returns how many points were stored.
//
// The whole batch is validated against the table before any point is
// committed, so an error never leaves a partially-appended batch, and the
// commit loop resolves symbol→value by direct index into the table's cached
// reconstruction values — no bounds math, NaN test or error path per point.
func (s *Store) Append(meterID uint64, pts []symbolic.SymbolPoint) (int, error) {
	sh := s.shardOf(meterID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.meters[meterID]
	if e == nil {
		return 0, fmt.Errorf("%w: %d", ErrUnknownMeter, meterID)
	}
	if len(e.state.Tables) == 0 {
		return 0, fmt.Errorf("%w: %d", ErrNoTable, meterID)
	}
	table := e.state.Tables[len(e.state.Tables)-1]
	level := table.Level()
	for i := range pts {
		if pts[i].S.Level() != level {
			return 0, fmt.Errorf("%w: point %d has level %d, table has level %d",
				ErrBadSymbol, i, pts[i].S.Level(), level)
		}
	}
	values := table.ReconstructionValues()
	// One growth per batch instead of per-point append doubling; with
	// Reserve'd capacity steady-state ingest allocates nothing.
	points := slices.Grow(e.state.Points, len(pts))
	for _, sp := range pts {
		points = append(points, ReconPoint{T: sp.T, S: sp.S, V: values[sp.S.Index()]})
	}
	e.state.Points = points
	return len(pts), nil
}

// Reserve pre-allocates capacity for at least n reconstructed points for the
// meter — capacity planning for ingest bursts: a session that knows how many
// windows a replayed day will produce can make every subsequent Append
// allocation-free.
func (s *Store) Reserve(meterID uint64, n int) error {
	sh := s.shardOf(meterID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.meters[meterID]
	if e == nil {
		return fmt.Errorf("%w: %d", ErrUnknownMeter, meterID)
	}
	if n > cap(e.state.Points) {
		e.state.Points = slices.Grow(e.state.Points, n-len(e.state.Points))
	}
	return nil
}

// Snapshot returns a copy of one meter's state (slices copied so callers
// can read without holding the shard lock).
func (s *Store) Snapshot(meterID uint64) (MeterState, bool) {
	sh := s.shardOf(meterID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e := sh.meters[meterID]
	if e == nil {
		return MeterState{}, false
	}
	st := e.state
	st.Tables = append([]*symbolic.Table(nil), e.state.Tables...)
	st.Points = append([]ReconPoint(nil), e.state.Points...)
	return st, true
}

// Meters returns the IDs of every meter the store has seen, in no
// particular order.
func (s *Store) Meters() []uint64 {
	var ids []uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id := range sh.meters {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	return ids
}

// TotalSymbols returns the number of reconstructed points across all
// meters.
func (s *Store) TotalSymbols() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, e := range sh.meters {
			total += len(e.state.Points)
		}
		sh.mu.RUnlock()
	}
	return total
}
