// Package server is the concurrent aggregation service of the paper's §2
// deployment story at fleet scale: many smart meters connect over TCP, each
// handshakes with its meter ID, ships its locally-learned lookup table, and
// streams packed symbols; the server runs one session goroutine per meter
// and keeps the symbols packed at rest in a sharded block store, so both
// ingest and compressed-domain queries scale across cores.
//
// Layering: internal/transport owns the wire format (frames, handshake,
// Decoder); this package owns connection lifecycle (Service), per-meter
// decoding state (session) and the shared mutable state (Store — packed
// block chains, see block.go; lock-free published read path, see index.go).
// internal/query answers aggregates on top of the Store's Meter handles. A
// Fleet driver simulates M meters streaming concurrently over real TCP for
// load generation and benchmarks.
package server

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"unsafe"

	"symmeter/internal/symbolic"
)

// Typed store errors, distinguishable with errors.Is.
var (
	// ErrDuplicateMeter reports a session handshake for a meter ID that
	// already has a live session.
	ErrDuplicateMeter = errors.New("server: meter already has an active session")
	// ErrUnknownMeter reports a write for a meter that never registered.
	ErrUnknownMeter = errors.New("server: unknown meter")
	// ErrNoTable reports symbol data arriving for a meter before any
	// lookup table.
	ErrNoTable = errors.New("server: meter has no lookup table")
)

// ReconPoint is one reconstructed measurement: the symbol the meter sent
// plus the representative value it decodes to under the table that was
// current when it arrived.
type ReconPoint struct {
	T int64
	S symbolic.Symbol
	V float64
}

// MeterState is the aggregate view of one meter, materialized on demand by
// Snapshot — the store itself never holds reconstructed points.
type MeterState struct {
	ID uint64
	// Tables holds every lookup table received, in order; the last is
	// current.
	Tables []*symbolic.Table
	// Points is the reconstructed stream, in arrival order.
	Points []ReconPoint
	// Sessions counts completed-or-active sessions for this meter (a meter
	// may reconnect).
	Sessions int
}

// meterEntry guards one meter's state inside a shard. Symbols live in a
// chain of packed blocks; only the last block (the tail) is ever mutated,
// and the sealed prefix is republished through the atomic idx pointer at
// each seal (see index.go), so queries read everything but the tail without
// any lock at all.
type meterEntry struct {
	id       uint64
	tables   []*symbolic.Table
	sessions int
	active   bool

	blocks []block

	// idx is the RCU-published sealed-chain index: swapped by the writer at
	// seal time, loaded by readers without the shard lock. Never nil (points
	// at emptyIndex until the first seal).
	idx atomic.Pointer[sealedIndex]
	// dirFirst backs the published time directory: one firstT per sealed
	// block, appended at seal time; published indexes hold length-capped
	// prefixes of it.
	dirFirst []int64
	// tailFirstT is the live tail's first timestamp, or noTail while the
	// meter has no unsealed points. Stored before the tail's first push and
	// after the index swap, so VisitRange's double-load can prove a query
	// range cannot reach the tail without locking.
	tailFirstT atomic.Int64
	// total is the symbol count across all blocks, tail included: written
	// under the shard lock, loaded lock-free by TotalSymbols.
	total atomic.Int64

	// Arena capacity carved into new blocks so a Reserve'd meter appends
	// without allocating. pendingReserve parks a Reserve that arrived before
	// the first table (the arena is sized by the table's level). arenaBytes
	// accumulates every arena allocation at full size — carved regions stay
	// resident for the arena's lifetime whether or not their block was
	// trimmed, so MemoryFootprint counts slabs whole, never remainders.
	payloadArena   []byte
	histArena      []uint32
	idxArena       []sealedIndex
	arenaBytes     int64
	pendingReserve int
}

// tail returns the mutable last block, or nil when the chain is empty. By
// construction the last block is always the unsealed tail: a block only
// seals at the instant its successor is created.
func (e *meterEntry) tail() *block {
	if len(e.blocks) == 0 {
		return nil
	}
	return &e.blocks[len(e.blocks)-1]
}

// newBlock appends a fresh block for the given epoch, carving payload and
// histogram space from the reserve arena when available.
func (e *meterEntry) newBlock(epoch uint32, level, k int) *block {
	nb := blockBytes(level)
	var payload []byte
	payloadFromArena := len(e.payloadArena) >= nb
	if payloadFromArena {
		payload = e.payloadArena[:nb:nb]
		e.payloadArena = e.payloadArena[nb:]
	} else {
		payload = make([]byte, nb)
	}
	var hist []uint32
	histFromArena := false
	if level <= maxHistLevel {
		if histFromArena = len(e.histArena) >= k; histFromArena {
			hist = e.histArena[:k:k]
			e.histArena = e.histArena[k:]
		} else {
			hist = make([]uint32, k)
		}
	}
	e.blocks = append(e.blocks, block{
		epoch:            epoch,
		level:            uint8(level),
		payload:          payload,
		hist:             hist,
		payloadFromArena: payloadFromArena,
		histFromArena:    histFromArena,
	})
	return &e.blocks[len(e.blocks)-1]
}

// idxMeta is the resident cost of one published index struct.
const idxMeta = int64(unsafe.Sizeof(sealedIndex{}))

// reserveLocked sizes the arenas, block slice, time directory and index
// arena for n more points under the meter's current table, so the whole
// append-and-seal-and-publish cycle runs allocation-free.
func (e *meterEntry) reserveLocked(n int) {
	table := e.tables[len(e.tables)-1]
	level, k := table.Level(), table.K()
	nb := (n+BlockCap-1)/BlockCap + 1
	if need := nb * blockBytes(level); len(e.payloadArena) < need {
		e.payloadArena = make([]byte, need)
		e.arenaBytes += int64(need)
	}
	if level <= maxHistLevel {
		if need := nb * k; len(e.histArena) < need {
			e.histArena = make([]uint32, need)
			e.arenaBytes += 4 * int64(need)
		}
	}
	if len(e.idxArena) < nb {
		e.idxArena = make([]sealedIndex, nb)
		e.arenaBytes += int64(nb) * idxMeta
	}
	e.blocks = slices.Grow(e.blocks, nb)
	e.dirFirst = slices.Grow(e.dirFirst, nb)
}

// shard is one lock domain of the store. The lock serializes writers (and
// the brief tail folds of readers); the published dir and each meter's
// published index serve everything else without it.
type shard struct {
	mu sync.RWMutex
	// dir is the published meter directory, swapped copy-on-write under mu
	// whenever a meter registers. Never nil (points at emptyShardDir).
	dir atomic.Pointer[shardDir]
	// queryLocks counts read-path shard-lock acquisitions (live-tail folds
	// and nothing else) — the measured basis for the "sealed-data queries
	// take zero locks" contract.
	queryLocks atomic.Int64
}

// meter returns the shard's entry for the ID, or nil. Safe with or without
// the shard lock: the lookup goes through the published directory.
func (sh *shard) meter(meterID uint64) *meterEntry {
	return sh.dir.Load().meters[meterID]
}

// Store is a sharded in-memory aggregation store. Meters are assigned to
// shards by a mixed hash of their ID; all state for one meter lives in one
// shard, so a session touches exactly one mutex and concurrent sessions on
// different shards never contend.
type Store struct {
	shards []shard
}

// NewStore returns a store with n shards (n < 1 is clamped to 1).
func NewStore(n int) *Store {
	if n < 1 {
		n = 1
	}
	s := &Store{shards: make([]shard, n)}
	for i := range s.shards {
		s.shards[i].dir.Store(&emptyShardDir)
	}
	return s
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// mix64 is the splitmix64 finalizer: sequential meter IDs (the common
// provisioning pattern) would otherwise land on sequential shards and, with
// shard counts sharing factors with the ID stride, pile onto a few locks.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardFor returns the shard index a meter ID maps to (exposed for tests
// and capacity planning).
func (s *Store) ShardFor(meterID uint64) int {
	return int(mix64(meterID) % uint64(len(s.shards)))
}

func (s *Store) shardOf(meterID uint64) *shard {
	return &s.shards[s.ShardFor(meterID)]
}

// Meter returns a lock-free handle to the meter's published state, and
// whether the meter exists. The lookup reads the shard's published
// directory — no lock is taken.
func (s *Store) Meter(meterID uint64) (Meter, bool) {
	sh := s.shardOf(meterID)
	e := sh.meter(meterID)
	if e == nil {
		return Meter{}, false
	}
	return Meter{e: e, sh: sh}, true
}

// ShardMeters returns the published meter handles of one shard, in
// registration order, without locking. The slice is shared and read-only;
// callers must not mutate or retain it past the query.
func (s *Store) ShardMeters(shardIdx int) []Meter {
	return s.shards[shardIdx].dir.Load().list
}

// QueryLockAcquisitions returns how many times the read path has taken a
// shard lock (live-tail folds) since the store was created. Queries that
// cover only sealed data leave it untouched — the measurable form of the
// lock-free read contract.
func (s *Store) QueryLockAcquisitions() int64 {
	var n int64
	for i := range s.shards {
		n += s.shards[i].queryLocks.Load()
	}
	return n
}

// StartSession registers a live session for the meter, creating its state
// on first contact. A second concurrent session for the same ID is refused
// with ErrDuplicateMeter — the wire protocol has no way to interleave two
// streams for one meter, so the newcomer must be an impostor or a stale
// reconnect racing its predecessor.
func (s *Store) StartSession(meterID uint64) error {
	sh := s.shardOf(meterID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.meter(meterID)
	if e == nil {
		e = &meterEntry{id: meterID}
		e.idx.Store(&emptyIndex)
		e.tailFirstT.Store(noTail)
		// Republish the shard directory with the newcomer: the map is copied
		// (concurrent lock-free lookups may be reading the old one), the list
		// extends append-only.
		old := sh.dir.Load()
		m := make(map[uint64]*meterEntry, len(old.meters)+1)
		for id, me := range old.meters {
			m[id] = me
		}
		m[meterID] = e
		sh.dir.Store(&shardDir{meters: m, list: append(old.list, Meter{e: e, sh: sh})})
	}
	if e.active {
		return fmt.Errorf("%w: %d", ErrDuplicateMeter, meterID)
	}
	e.active = true
	e.sessions++
	return nil
}

// EndSession releases the meter's live-session slot. Accumulated state is
// kept: an abrupt disconnect loses at most the batch in flight, never the
// shard.
func (s *Store) EndSession(meterID uint64) {
	sh := s.shardOf(meterID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e := sh.meter(meterID); e != nil {
		e.active = false
	}
}

// PushTable records a new lookup table for the meter, opening a new epoch:
// the current tail block is left to seal itself on the next append.
func (s *Store) PushTable(meterID uint64, t *symbolic.Table) error {
	sh := s.shardOf(meterID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.meter(meterID)
	if e == nil {
		return fmt.Errorf("%w: %d", ErrUnknownMeter, meterID)
	}
	e.tables = append(e.tables, t)
	if e.pendingReserve > 0 {
		e.reserveLocked(e.pendingReserve)
		e.pendingReserve = 0
	}
	return nil
}

// ErrBadSymbol reports a symbol whose level does not match the meter's
// current lookup table, making it undecodable.
var ErrBadSymbol = errors.New("server: symbol level does not match table")

// Append commits a decoded symbol batch into the meter's packed block chain
// under its current table epoch. It returns how many points were stored.
//
// The whole batch is validated against the table before any point is
// committed, so an error never leaves a partially-appended batch. Each point
// costs one bit-pack into the tail block plus O(1) summary updates; a point
// that breaks the tail's timestamp stride (a gap) or arrives under a new
// epoch seals the tail, publishes the sealed index (the single point where
// the lock-free read path learns about new data), and opens a fresh block.
func (s *Store) Append(meterID uint64, pts []symbolic.SymbolPoint) (int, error) {
	sh := s.shardOf(meterID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.meter(meterID)
	if e == nil {
		return 0, fmt.Errorf("%w: %d", ErrUnknownMeter, meterID)
	}
	if len(e.tables) == 0 {
		return 0, fmt.Errorf("%w: %d", ErrNoTable, meterID)
	}
	epoch := uint32(len(e.tables) - 1)
	table := e.tables[epoch]
	level := table.Level()
	for i := range pts {
		if pts[i].S.Level() != level {
			return 0, fmt.Errorf("%w: point %d has level %d, table has level %d",
				ErrBadSymbol, i, pts[i].S.Level(), level)
		}
	}
	values := table.ReconstructionValues()
	k := table.K()
	tail := e.tail()
	for _, sp := range pts {
		if tail == nil || !tail.accepts(sp.T, epoch) {
			if tail != nil {
				// Trim before publishing: a block must never mutate after the
				// index that contains it is visible to lock-free readers.
				tail.seal()
				e.publish()
			}
			tail = e.newBlock(epoch, level, k)
			// Publish the new tail's start before its first point lands, so
			// a lock-free reader that proves a stable index generation can
			// trust this bound (see Meter.VisitRange).
			e.tailFirstT.Store(sp.T)
		}
		idx := uint32(sp.S.Index())
		tail.push(sp.T, idx, values[idx])
	}
	e.total.Add(int64(len(pts)))
	return len(pts), nil
}

// Reserve pre-allocates block capacity for at least n points for the meter —
// capacity planning for ingest bursts: a session that knows how many windows
// a replayed day will produce makes every subsequent Append allocation-free.
// A Reserve arriving before the meter's first table (the session handshake
// order) is parked and applied when the table lands, since the arena is
// sized by the table's symbol level.
func (s *Store) Reserve(meterID uint64, n int) error {
	sh := s.shardOf(meterID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.meter(meterID)
	if e == nil {
		return fmt.Errorf("%w: %d", ErrUnknownMeter, meterID)
	}
	if len(e.tables) == 0 {
		if n > e.pendingReserve {
			e.pendingReserve = n
		}
		return nil
	}
	e.reserveLocked(n)
	return nil
}

// Snapshot returns a copy of one meter's state with the point stream
// reconstructed from its packed blocks. Only the chain header, the table
// list and the mutable tail block are copied under the shard lock; the
// actual reconstruction — the expensive part — runs after the lock is
// released, reading the sealed (immutable) blocks directly. A slow reader
// therefore no longer stalls ingest on the shard.
func (s *Store) Snapshot(meterID uint64) (MeterState, bool) {
	sh := s.shardOf(meterID)
	sh.mu.RLock()
	e := sh.meter(meterID)
	if e == nil {
		sh.mu.RUnlock()
		return MeterState{}, false
	}
	st := MeterState{ID: e.id, Sessions: e.sessions}
	st.Tables = append([]*symbolic.Table(nil), e.tables...)
	blocks := e.blocks
	total := int(e.total.Load())
	var tailCopy block
	if len(blocks) > 0 {
		// The tail keeps growing after we unlock; freeze its summary and the
		// payload bytes written so far.
		tailCopy = blocks[len(blocks)-1]
		tailCopy.payload = append([]byte(nil), tailCopy.payload...)
	}
	sh.mu.RUnlock()

	st.Points = make([]ReconPoint, 0, total)
	var scratch []symbolic.Symbol
	for i := 0; i+1 < len(blocks); i++ {
		st.Points, scratch = appendBlockPoints(st.Points, &blocks[i], st.Tables, scratch)
	}
	if len(blocks) > 0 {
		st.Points, _ = appendBlockPoints(st.Points, &tailCopy, st.Tables, scratch)
	}
	return st, true
}

// appendBlockPoints reconstructs one block's points via the codec's
// sequential range decoder, reusing scratch across blocks.
func appendBlockPoints(dst []ReconPoint, b *block, tables []*symbolic.Table, scratch []symbolic.Symbol) ([]ReconPoint, []symbolic.Symbol) {
	values := tables[b.epoch].ReconstructionValues()
	scratch = symbolic.AppendUnpackRange(scratch[:0], b.payload, int(b.level), 0, int(b.n))
	for i, s := range scratch {
		dst = append(dst, ReconPoint{
			T: b.firstT + int64(i)*b.stride,
			S: s,
			V: values[s.Index()],
		})
	}
	return dst, scratch
}

// QueryMeter invokes fn for each non-empty block of the meter in append
// order, under the shard read lock, and reports whether the meter exists.
// fn must be pure computation over the view — no blocking, no retaining of
// the view's slices (see BlockView). This is the full-chain compatibility
// walk; range queries should go through Meter.VisitRange, which reads
// sealed data lock-free and prunes via the time directory.
func (s *Store) QueryMeter(meterID uint64, fn func(BlockView)) bool {
	sh := s.shardOf(meterID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e := sh.meter(meterID)
	if e == nil {
		return false
	}
	for i := range e.blocks {
		if e.blocks[i].n == 0 {
			continue
		}
		fn(e.view(&e.blocks[i]))
	}
	return true
}

// view builds the visitor view for a block under the meter's live tables
// (callers hold the shard lock).
func (e *meterEntry) view(b *block) BlockView {
	return viewOf(b, e.tables)
}

// Meters returns the IDs of every meter the store has seen, in no
// particular order, reading only the published shard directories — no shard
// lock is taken.
func (s *Store) Meters() []uint64 {
	var ids []uint64
	for i := range s.shards {
		for _, m := range s.shards[i].dir.Load().list {
			ids = append(ids, m.ID())
		}
	}
	return ids
}

// TotalSymbols returns the number of stored points across all meters,
// reading only published state — no shard lock is taken. Concurrent appends
// may or may not be included, exactly as with any racing counter read.
func (s *Store) TotalSymbols() int {
	total := 0
	for i := range s.shards {
		for _, m := range s.shards[i].dir.Load().list {
			total += m.TotalSymbols()
		}
	}
	return total
}

// MemoryFootprint returns the resident bytes attributable to point storage
// and the number of stored points — the measured basis for the
// bytes-per-point claim in BENCH_4. Reserve arenas (payload, histogram and
// index-struct slabs) are counted at their full allocated size (carved
// regions stay resident for the slab's lifetime, trimmed or not); blocks add
// their metadata plus any payload or histogram they own outside an arena;
// the time directory adds 8 bytes per slot of its capacity. Table and map
// overhead is excluded: both exist identically in any storage scheme.
func (s *Store) MemoryFootprint() (bytes, points int64) {
	const blockMeta = int64(unsafe.Sizeof(block{}))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, m := range sh.dir.Load().list {
			e := m.e
			points += e.total.Load()
			bytes += e.arenaBytes
			bytes += 8 * int64(cap(e.dirFirst))
			for j := range e.blocks {
				b := &e.blocks[j]
				bytes += blockMeta
				if !b.payloadFromArena {
					bytes += int64(cap(b.payload))
				}
				if !b.histFromArena {
					bytes += 4 * int64(cap(b.hist))
				}
			}
		}
		sh.mu.RUnlock()
	}
	return bytes, points
}
