package server

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"

	"symmeter/internal/timeseries"
	"symmeter/internal/transport"
)

// acceptResult is one scripted Accept outcome for stubListener.
type acceptResult struct {
	conn net.Conn
	err  error
}

// stubListener feeds the accept loop a script of failures and connections —
// the regression harness for the "any Accept error kills the loop" bug.
type stubListener struct {
	ch chan acceptResult
}

func (l *stubListener) Accept() (net.Conn, error) {
	r, ok := <-l.ch
	if !ok {
		return nil, net.ErrClosed
	}
	return r.conn, r.err
}

func (l *stubListener) Close() error   { return nil }
func (l *stubListener) Addr() net.Addr { return &net.TCPAddr{IP: net.IPv4zero} }

// TestAcceptLoopSurvivesTransientErrors proves the accept loop retries
// transient failures (ECONNABORTED, EMFILE, ...) with backoff instead of
// returning — a session arriving after a burst of errors is still served.
func TestAcceptLoopSurvivesTransientErrors(t *testing.T) {
	svc := New(Config{Shards: 2})
	t.Cleanup(func() { svc.Close() })
	ln := &stubListener{ch: make(chan acceptResult, 8)}
	for i := 0; i < 3; i++ {
		ln.ch <- acceptResult{err: errors.New("accept: connection aborted")}
	}
	serverEnd, clientEnd := net.Pipe()
	ln.ch <- acceptResult{conn: serverEnd}

	done := make(chan struct{})
	go func() {
		svc.serve(ln, false)
		close(done)
	}()

	// The session after the error burst must run normally end to end.
	if err := transport.WriteHandshake(clientEnd, 1); err != nil {
		t.Fatal(err)
	}
	writeRawFrame(t, clientEnd, transport.FrameEnd, 0, nil)
	if !svc.AwaitSessions(1, 5*time.Second) {
		t.Fatal("session after transient accept errors never completed")
	}
	clientEnd.Close()

	st := svc.Stats()
	if st.AcceptRetries != 3 {
		t.Fatalf("accept retries = %d, want 3", st.AcceptRetries)
	}
	if st.Sessions != 1 {
		t.Fatalf("sessions = %d, want 1", st.Sessions)
	}
	if errs := svc.SessionErrors(); len(errs) != 0 {
		t.Fatalf("session errors: %v", errs)
	}

	// Only a closed listener ends the loop.
	close(ln.ch)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return on listener close")
	}
}

// TestIdleSessionReapedAndMeterFreed proves the idle-timeout fix: a client
// that goes silent is reaped (instead of parking its goroutine forever) and
// its meter ID becomes connectable again.
func TestIdleSessionReapedAndMeterFreed(t *testing.T) {
	svc := New(Config{Shards: 2, IdleTimeout: 100 * time.Millisecond})
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })

	const meter uint64 = 9
	conn := rawConn(t, addr.String())
	if err := transport.WriteHandshake(conn, meter); err != nil {
		t.Fatal(err)
	}
	// Session registered, then the client goes silent.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := svc.Store().Snapshot(meter); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitSessionErr(t, svc, os.ErrDeadlineExceeded)
	expectClosed(t, conn)

	// The reaped session released its registration: the meter reconnects and
	// completes a clean second session.
	c2 := rawConn(t, addr.String())
	if err := transport.WriteHandshake(c2, meter); err != nil {
		t.Fatal(err)
	}
	sensor, err := transport.NewSensor(c2, testTable(t), 60, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 120; i++ {
		if err := sensor.Push(timeseries.Point{T: i, V: 100}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sensor.Close(); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	if !svc.AwaitSessions(2, 10*time.Second) {
		t.Fatal("reconnect session never completed")
	}
	for _, err := range svc.SessionErrors() {
		if errors.Is(err, ErrDuplicateMeter) {
			t.Fatalf("reconnect hit ErrDuplicateMeter: %v", err)
		}
	}
	st, _ := svc.Store().Snapshot(meter)
	if st.Sessions != 2 || len(st.Points) != 2 {
		t.Fatalf("meter after reconnect: %d sessions, %d points", st.Sessions, len(st.Points))
	}
}

// TestIdleTimeoutRefreshedPerFrame proves steady traffic keeps a session
// alive well past the idle timeout — the deadline is per-read, not
// per-connection.
func TestIdleTimeoutRefreshedPerFrame(t *testing.T) {
	svc := New(Config{Shards: 2, IdleTimeout: 150 * time.Millisecond})
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })

	conn := rawConn(t, addr.String())
	if err := transport.WriteHandshake(conn, 4); err != nil {
		t.Fatal(err)
	}
	sensor, err := transport.NewSensor(conn, testTable(t), 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Stream one window every ~50ms for 3× the idle timeout.
	start := time.Now()
	var ts int64
	for time.Since(start) < 450*time.Millisecond {
		for i := int64(0); i < 60; i++ {
			if err := sensor.Push(timeseries.Point{T: ts, V: 100}); err != nil {
				t.Fatal(err)
			}
			ts++
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := sensor.Close(); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if !svc.AwaitSessions(1, 10*time.Second) {
		t.Fatal("session never completed")
	}
	if errs := svc.SessionErrors(); len(errs) != 0 {
		t.Fatalf("live session reaped: %v", errs)
	}
}
