package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"symmeter/internal/transport"
)

// countingReader counts bytes as they come off the connection so the
// service can report bytes-on-wire without the transport layer knowing.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// idleReader arms the connection's read deadline before every Read, so the
// idle clock restarts on each byte of progress. A peer that stalls longer
// than the timeout surfaces os.ErrDeadlineExceeded (inside a *net.OpError)
// to whichever decode loop is reading, which tears the session down and —
// for ingest — frees the meter ID for a reconnect.
type idleReader struct {
	conn    net.Conn
	timeout time.Duration
}

func (ir *idleReader) Read(p []byte) (int, error) {
	if err := ir.conn.SetReadDeadline(time.Now().Add(ir.timeout)); err != nil {
		return 0, err
	}
	return ir.conn.Read(p)
}

// runSession drives one accepted ingest connection end to end: handshake,
// meter registration, then the decode loop. The caller (handleConn) owns
// buffering, byte counting and any idle deadline; r is the ready-to-read
// stream (conn is only written to — acks in sequenced sessions). It returns
// the number of symbols ingested and a nil error only for an orderly
// 'E'-terminated stream.
//
// Failure isolation is the point of the structure: every store write is a
// single shard-locked call, so an error at any point — torn frame, abrupt
// disconnect, bad table — tears down only this session. State committed by
// earlier batches stays readable and the shard lock is never held across a
// network read, so a dying session cannot poison its shard.
func (s *Service) runSession(conn net.Conn, r io.Reader) (symbols int64, err error) {
	hs, err := transport.ReadHandshake(r)
	if err != nil {
		return 0, err
	}
	if s.draining.Load() {
		s.met.drainRefusals.Inc()
		return 0, fmt.Errorf("%w: meter %d", ErrDraining, hs.MeterID)
	}
	if err := s.ingest.StartSession(hs.MeterID); err != nil {
		return 0, err
	}
	defer s.ingest.EndSession(hs.MeterID)
	if s.reservePoints > 0 {
		if err := s.ingest.Reserve(hs.MeterID, s.reservePoints); err != nil {
			return 0, err
		}
	}
	if hs.Sequenced() {
		return s.runSequencedSession(conn, r, hs.MeterID)
	}

	dec := transport.NewDecoder(r)
	dec.SetFrameMetrics(s.met.framesIn)
	for {
		ev, err := dec.Next()
		if errors.Is(err, io.EOF) {
			// The sensor always sends 'E' before closing; a bare EOF is an
			// abrupt disconnect mid-stream.
			return symbols, fmt.Errorf("server: meter %d disconnected without end frame: %w", hs.MeterID, io.ErrUnexpectedEOF)
		}
		if err != nil {
			return symbols, fmt.Errorf("server: meter %d: %w", hs.MeterID, err)
		}
		switch ev.Type {
		case transport.FrameTable:
			if err := s.ingest.PushTable(hs.MeterID, ev.Table); err != nil {
				return symbols, err
			}
		case transport.FrameSymbol:
			cost := int64(len(ev.Points)) * pointWireCost
			if err := s.acquireIngest(hs.MeterID, cost); err != nil {
				// Legacy sessions have no per-batch refusal channel; the
				// typed verdict goes out as the parting 'X' frame.
				return symbols, err
			}
			start := time.Now()
			n, err := s.ingest.Append(hs.MeterID, ev.Points)
			s.met.ingestBatchLat.Since(start)
			s.releaseIngest(hs.MeterID, cost)
			if err != nil {
				return symbols, err
			}
			symbols += int64(n)
		case transport.FrameEnd:
			return symbols, nil
		case transport.FrameSeqTable, transport.FrameSeqSymbol:
			return symbols, fmt.Errorf("server: meter %d: sequenced frame %#x on unsequenced session", hs.MeterID, ev.Type)
		}
	}
}

// runSequencedSession drives the acknowledged, exactly-once decode loop
// negotiated by FlagSequenced. The handshake reply is an 'A' frame carrying
// the meter's committed high-water mark (so a reconnecting client replays
// only unacked batches); every committed or duplicate-suppressed frame is
// acked with its seq; retryable refusals — degraded storage, overload —
// answer with a per-batch 'X' frame (id = refused seq) and keep the session
// alive, so the client backs off and resends the same seq. Only protocol
// violations (sequence gaps, unsequenced frames) and transport failures
// tear the session down.
func (s *Service) runSequencedSession(conn net.Conn, r io.Reader, meterID uint64) (symbols int64, err error) {
	si, ok := s.ingest.(SequencedIngest)
	if !ok {
		return 0, fmt.Errorf("server: meter %d requested a sequenced session, ingest layer cannot sequence", meterID)
	}
	s.met.sequencedSessions.Inc()
	hwm := si.LastSeq(meterID)
	if hwm > 0 {
		s.met.reconnectReplays.Inc()
	}
	var wbuf []byte
	ack := func(seq uint64) error {
		wbuf = transport.AppendAckFrame(wbuf[:0], seq)
		return s.writeFrame(conn, wbuf)
	}
	refuse := func(seq uint64, cause error) error {
		wbuf = transport.AppendQueryErrorFrame(wbuf[:0], seq, ingestVerdictCode(cause), cause.Error())
		return s.writeFrame(conn, wbuf)
	}
	if err := ack(hwm); err != nil {
		return 0, fmt.Errorf("server: meter %d handshake ack: %w", meterID, err)
	}

	dec := transport.NewDecoder(r)
	dec.SetFrameMetrics(s.met.framesIn)
	if hwm > 0 {
		// A committed high-water mark proves a table commit (a fresh meter's
		// first committable frame is necessarily its table), so the resumed
		// stream may open with symbol batches.
		dec.TableEstablished()
	}
	for {
		ev, err := dec.Next()
		if errors.Is(err, io.EOF) {
			return symbols, fmt.Errorf("server: meter %d disconnected without end frame: %w", meterID, io.ErrUnexpectedEOF)
		}
		if err != nil {
			return symbols, fmt.Errorf("server: meter %d: %w", meterID, err)
		}
		switch ev.Type {
		case transport.FrameSeqTable:
			dup, err := si.PushTableSeq(meterID, ev.Seq, ev.Table)
			if err != nil {
				if retryableRefusal(err) {
					if werr := refuse(ev.Seq, err); werr != nil {
						return symbols, fmt.Errorf("server: meter %d refusal write: %w", meterID, werr)
					}
					continue
				}
				return symbols, err
			}
			if dup {
				s.met.duplicateBatches.Inc()
			}
			if err := ack(ev.Seq); err != nil {
				return symbols, fmt.Errorf("server: meter %d ack write: %w", meterID, err)
			}
		case transport.FrameSeqSymbol:
			cost := int64(len(ev.Points)) * pointWireCost
			if err := s.acquireIngest(meterID, cost); err != nil {
				if werr := refuse(ev.Seq, err); werr != nil {
					return symbols, fmt.Errorf("server: meter %d refusal write: %w", meterID, werr)
				}
				continue
			}
			start := time.Now()
			n, dup, err := si.AppendSeq(meterID, ev.Seq, ev.Points)
			s.met.ingestBatchLat.Since(start)
			s.releaseIngest(meterID, cost)
			if err != nil {
				// A refusal before anything committed keeps the session (and
				// the client's right to resend this seq); a partial commit
				// cannot be retried under the same seq, so it tears down.
				if n == 0 && retryableRefusal(err) {
					if werr := refuse(ev.Seq, err); werr != nil {
						return symbols, fmt.Errorf("server: meter %d refusal write: %w", meterID, werr)
					}
					continue
				}
				return symbols, err
			}
			if dup {
				s.met.duplicateBatches.Inc()
			}
			symbols += int64(n)
			if err := ack(ev.Seq); err != nil {
				return symbols, fmt.Errorf("server: meter %d ack write: %w", meterID, err)
			}
		case transport.FrameEnd:
			return symbols, nil
		case transport.FrameTable, transport.FrameSymbol:
			return symbols, fmt.Errorf("server: meter %d: unsequenced frame %#x on sequenced session", meterID, ev.Type)
		}
	}
}

// retryableRefusal reports whether an ingest error is a typed
// nothing-was-written refusal a sequenced session survives (the client
// resends the same seq after backoff).
func retryableRefusal(err error) bool {
	return errors.Is(err, ErrDegraded) || errors.Is(err, ErrOverloaded)
}
