package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"symmeter/internal/transport"
)

// countingReader counts bytes as they come off the connection so the
// service can report bytes-on-wire without the transport layer knowing.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// runSession drives one accepted connection end to end: handshake, meter
// registration, then the decode loop. It returns the number of symbols
// ingested and a nil error only for an orderly 'E'-terminated stream.
//
// Failure isolation is the point of the structure: every store write is a
// single shard-locked call, so an error at any point — torn frame, abrupt
// disconnect, bad table — tears down only this session. State committed by
// earlier batches stays readable and the shard lock is never held across a
// network read, so a dying session cannot poison its shard.
func (s *Service) runSession(conn io.Reader, bytesIn *int64) (symbols int64, err error) {
	cr := &countingReader{r: conn}
	defer func() { *bytesIn = cr.n }()
	br := bufio.NewReader(cr)

	hs, err := transport.ReadHandshake(br)
	if err != nil {
		return 0, err
	}
	if err := s.ingest.StartSession(hs.MeterID); err != nil {
		return 0, err
	}
	defer s.ingest.EndSession(hs.MeterID)
	if s.reservePoints > 0 {
		if err := s.ingest.Reserve(hs.MeterID, s.reservePoints); err != nil {
			return 0, err
		}
	}

	dec := transport.NewDecoder(br)
	for {
		ev, err := dec.Next()
		if errors.Is(err, io.EOF) {
			// The sensor always sends 'E' before closing; a bare EOF is an
			// abrupt disconnect mid-stream.
			return symbols, fmt.Errorf("server: meter %d disconnected without end frame: %w", hs.MeterID, io.ErrUnexpectedEOF)
		}
		if err != nil {
			return symbols, fmt.Errorf("server: meter %d: %w", hs.MeterID, err)
		}
		switch ev.Type {
		case transport.FrameTable:
			if err := s.ingest.PushTable(hs.MeterID, ev.Table); err != nil {
				return symbols, err
			}
		case transport.FrameSymbol:
			n, err := s.ingest.Append(hs.MeterID, ev.Points)
			if err != nil {
				return symbols, err
			}
			symbols += int64(n)
		case transport.FrameEnd:
			return symbols, nil
		}
	}
}
