package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"symmeter/internal/transport"
)

// countingReader counts bytes as they come off the connection so the
// service can report bytes-on-wire without the transport layer knowing.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// idleReader arms the connection's read deadline before every Read, so the
// idle clock restarts on each byte of progress. A peer that stalls longer
// than the timeout surfaces os.ErrDeadlineExceeded (inside a *net.OpError)
// to whichever decode loop is reading, which tears the session down and —
// for ingest — frees the meter ID for a reconnect.
type idleReader struct {
	conn    net.Conn
	timeout time.Duration
}

func (ir *idleReader) Read(p []byte) (int, error) {
	if err := ir.conn.SetReadDeadline(time.Now().Add(ir.timeout)); err != nil {
		return 0, err
	}
	return ir.conn.Read(p)
}

// runSession drives one accepted ingest connection end to end: handshake,
// meter registration, then the decode loop. The caller (handleConn) owns
// buffering, byte counting and any idle deadline; r is the ready-to-read
// stream. It returns the number of symbols ingested and a nil error only
// for an orderly 'E'-terminated stream.
//
// Failure isolation is the point of the structure: every store write is a
// single shard-locked call, so an error at any point — torn frame, abrupt
// disconnect, bad table — tears down only this session. State committed by
// earlier batches stays readable and the shard lock is never held across a
// network read, so a dying session cannot poison its shard.
func (s *Service) runSession(r io.Reader) (symbols int64, err error) {
	hs, err := transport.ReadHandshake(r)
	if err != nil {
		return 0, err
	}
	if err := s.ingest.StartSession(hs.MeterID); err != nil {
		return 0, err
	}
	defer s.ingest.EndSession(hs.MeterID)
	if s.reservePoints > 0 {
		if err := s.ingest.Reserve(hs.MeterID, s.reservePoints); err != nil {
			return 0, err
		}
	}

	dec := transport.NewDecoder(r)
	for {
		ev, err := dec.Next()
		if errors.Is(err, io.EOF) {
			// The sensor always sends 'E' before closing; a bare EOF is an
			// abrupt disconnect mid-stream.
			return symbols, fmt.Errorf("server: meter %d disconnected without end frame: %w", hs.MeterID, io.ErrUnexpectedEOF)
		}
		if err != nil {
			return symbols, fmt.Errorf("server: meter %d: %w", hs.MeterID, err)
		}
		switch ev.Type {
		case transport.FrameTable:
			if err := s.ingest.PushTable(hs.MeterID, ev.Table); err != nil {
				return symbols, err
			}
		case transport.FrameSymbol:
			n, err := s.ingest.Append(hs.MeterID, ev.Points)
			if err != nil {
				return symbols, err
			}
			symbols += int64(n)
		case transport.FrameEnd:
			return symbols, nil
		}
	}
}
