package server

import (
	"strconv"

	"symmeter/internal/metrics"
	"symmeter/internal/transport"
)

// serviceMetrics is the service's registry-backed counter set. Every counter
// the old Stats snapshot exposed lives here as a first-class registry series
// (one atomic add either way — Stats() reads the same handles), plus the
// latency recorders and per-frame-type transport counters that only exist
// through the registry. A Service always has one: when the config carries no
// registry a private one is created, so the recording paths never branch on
// "is telemetry on".
type serviceMetrics struct {
	reg *metrics.Registry

	sessions           *metrics.Counter
	active             *metrics.Gauge
	symbols            *metrics.Counter
	bytesIn            *metrics.Counter
	querySessions      *metrics.Counter
	activeQueries      *metrics.Gauge
	acceptRetries      *metrics.Counter
	degradedSessions   *metrics.Counter
	sequencedSessions  *metrics.Counter
	overloadRefusals   *metrics.Counter
	drainRefusals      *metrics.Counter
	reconnectReplays   *metrics.Counter
	duplicateBatches   *metrics.Counter
	writeDeadlineReaps *metrics.Counter

	// ingestBatchLat times each batch commit (WAL + store) inside the
	// session loop; queryLat times ServeQuery execution inside the query
	// workers. Both recorders are lock-free and zero-alloc (see
	// internal/metrics), so the hot paths keep their AllocsPerRun pins.
	ingestBatchLat *metrics.Latency
	queryLat       *metrics.Latency

	framesIn  *transport.FrameMetrics
	framesOut *transport.FrameMetrics
}

// newServiceMetrics registers the service's counter families on reg.
func newServiceMetrics(reg *metrics.Registry) *serviceMetrics {
	return &serviceMetrics{
		reg: reg,
		sessions: reg.Counter("symmeter_ingest_sessions_total",
			"Ingest sessions started."),
		active: reg.Gauge("symmeter_ingest_sessions_active",
			"Connections currently in an ingest session (or not yet classified)."),
		symbols: reg.Counter("symmeter_ingest_symbols_total",
			"Symbols committed to the store."),
		bytesIn: reg.Counter("symmeter_net_bytes_in_total",
			"Bytes read off all accepted connections (tables, symbols, queries, framing)."),
		querySessions: reg.Counter("symmeter_query_sessions_total",
			"Query sessions started."),
		activeQueries: reg.Gauge("symmeter_query_sessions_active",
			"Query sessions currently running."),
		acceptRetries: reg.Counter("symmeter_accept_retries_total",
			"Transient Accept failures survived by the accept loop's backoff."),
		degradedSessions: reg.Counter("symmeter_ingest_degraded_sessions_total",
			"Ingest sessions refused or torn down with VerdictDegraded."),
		sequencedSessions: reg.Counter("symmeter_ingest_sequenced_sessions_total",
			"Ingest sessions that negotiated the sequenced, acknowledged protocol."),
		overloadRefusals: reg.Counter("symmeter_ingest_overload_refusals_total",
			"Batches refused by the per-shard admission gate with VerdictOverloaded."),
		drainRefusals: reg.Counter("symmeter_drain_refusals_total",
			"Sessions refused with VerdictDraining during graceful shutdown."),
		reconnectReplays: reg.Counter("symmeter_ingest_reconnect_replays_total",
			"Sequenced handshakes that found committed history (reconnects)."),
		duplicateBatches: reg.Counter("symmeter_ingest_duplicate_batches_total",
			"Sequenced frames suppressed as already committed."),
		writeDeadlineReaps: reg.Counter("symmeter_write_deadline_reaps_total",
			"Response writes that hit the write deadline, tearing down the session."),
		ingestBatchLat: reg.Latency("symmeter_ingest_batch_seconds",
			"Ingest batch commit latency (WAL + store), per symbol batch."),
		queryLat: reg.Latency("symmeter_query_seconds",
			"Query execution latency inside the query workers."),
		framesIn:  transport.NewFrameMetrics(reg, "in"),
		framesOut: transport.NewFrameMetrics(reg, "out"),
	}
}

// registerShardGauges exposes the per-shard admission-budget occupancy (and
// the configured budget) once the in-flight gauges exist. Called from New.
func (s *Service) registerShardGauges() {
	reg := s.met.reg
	for i := range s.inflight {
		g := &s.inflight[i]
		reg.GaugeFunc("symmeter_ingest_inflight_bytes",
			"Estimated bytes of ingest batches currently being committed, per shard.",
			func() float64 { return float64(g.Load()) },
			metrics.Label{Key: "shard", Value: strconv.Itoa(i)})
	}
	reg.GaugeFunc("symmeter_ingest_budget_bytes",
		"Per-shard ingest admission budget (0 = unlimited).",
		func() float64 { return float64(s.ingestBudget) })
	reg.GaugeFunc("symmeter_draining",
		"1 while the service is in graceful drain, else 0.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
}
