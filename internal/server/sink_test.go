package server

import (
	"errors"
	"math"
	"testing"

	"symmeter/internal/symbolic"
)

// memSink is a SealSink that relocates every payload into its own arena —
// the in-memory stand-in for a segment writer's mmapped region.
type memSink struct {
	sealed []SealedBlock
	arena  [][]byte
	err    error
}

func (s *memSink) SealedBlock(meterID uint64, blk SealedBlock) ([]byte, error) {
	if s.err != nil {
		return nil, s.err
	}
	cp := append([]byte(nil), blk.Payload...)
	s.arena = append(s.arena, cp)
	rec := blk
	rec.Payload = cp
	rec.Hist = append([]uint32(nil), blk.Hist...)
	s.sealed = append(s.sealed, rec)
	return cp, nil
}

// fill streams n regular points into meter 1 in 96-point batches.
func fill(t *testing.T, st *Store, table *symbolic.Table, meterID uint64, n int) {
	t.Helper()
	if err := st.StartSession(meterID); err != nil {
		t.Fatal(err)
	}
	if err := st.PushTable(meterID, table); err != nil {
		t.Fatal(err)
	}
	var ts int64
	for sent := 0; sent < n; {
		batch := 96
		if batch > n-sent {
			batch = n - sent
		}
		pts := make([]symbolic.SymbolPoint, batch)
		for i := range pts {
			pts[i] = symbolic.SymbolPoint{T: ts, S: table.Encode(float64((sent + i) * 13 % 900))}
			ts += 900
		}
		if _, err := st.Append(meterID, pts); err != nil {
			t.Fatal(err)
		}
		sent += batch
	}
}

func TestSealSinkReceivesAndRelocates(t *testing.T) {
	table := testTable(t)
	sink := &memSink{}
	st := NewStore(2)
	st.SetSealSink(sink)
	const n = 3*BlockCap + 100
	fill(t, st, table, 1, n)

	if got, want := len(sink.sealed), 3; got != want {
		t.Fatalf("sink saw %d blocks, want %d", got, want)
	}
	// The store must serve the relocated bytes: compare a no-sink twin.
	want := NewStore(2)
	fill(t, want, table, 1, n)
	gs, _ := st.Snapshot(1)
	ws, _ := want.Snapshot(1)
	if len(gs.Points) != len(ws.Points) {
		t.Fatalf("points: %d vs %d", len(gs.Points), len(ws.Points))
	}
	for i := range gs.Points {
		if gs.Points[i] != ws.Points[i] {
			t.Fatalf("point %d: %+v vs %+v", i, gs.Points[i], ws.Points[i])
		}
	}
	// Sink metadata must match the published views.
	m, _ := st.Meter(1)
	if m.SealedBlocks() != 3 {
		t.Fatalf("published %d sealed blocks", m.SealedBlocks())
	}
	for i, sb := range sink.sealed {
		if sb.N != BlockCap || sb.Level != table.Level() || sb.Epoch != 0 {
			t.Fatalf("sealed block %d metadata off: %+v", i, sb)
		}
		if sb.FirstT != int64(i)*BlockCap*900 {
			t.Fatalf("sealed block %d firstT %d", i, sb.FirstT)
		}
	}
	// Spilled payloads must not count as resident heap.
	bytes, pts := st.MemoryFootprint()
	wantBytes, _ := want.MemoryFootprint()
	if pts != n {
		t.Fatalf("footprint points %d, want %d", pts, n)
	}
	if bytes >= wantBytes {
		t.Errorf("spilled store resident %d B, in-memory twin %d B — spill evicted nothing", bytes, wantBytes)
	}
}

func TestSealSinkErrorFailsAppendButKeepsData(t *testing.T) {
	table := testTable(t)
	sink := &memSink{}
	st := NewStore(1)
	st.SetSealSink(sink)
	fill(t, st, table, 1, BlockCap) // exactly one full block, not yet sealed

	sinkErr := errors.New("disk full")
	sink.err = sinkErr
	pts := []symbolic.SymbolPoint{{T: int64(BlockCap) * 900, S: table.Encode(1)}}
	if _, err := st.Append(1, pts); !errors.Is(err, sinkErr) {
		t.Fatalf("append during failing spill: %v, want the sink error", err)
	}
	// Committed points are all still readable.
	if got := st.TotalSymbols(); got != BlockCap {
		t.Fatalf("total after failed spill: %d, want %d", got, BlockCap)
	}
	// Clearing the fault lets the next append retry the spill and proceed.
	sink.err = nil
	if _, err := st.Append(1, pts); err != nil {
		t.Fatalf("append after spill recovers: %v", err)
	}
	if got := st.TotalSymbols(); got != BlockCap+1 {
		t.Fatalf("total after retry: %d, want %d", got, BlockCap+1)
	}
	if len(sink.sealed) != 1 {
		t.Fatalf("sink saw %d blocks after retry", len(sink.sealed))
	}
}

func TestRestoreMeterRoundTrip(t *testing.T) {
	table := testTable(t)
	sink := &memSink{}
	src := NewStore(2)
	src.SetSealSink(sink)
	const n = 4*BlockCap + 77
	fill(t, src, table, 9, n)

	// Rebuild a store from the sink's record of the sealed chain plus a
	// replay of the tail points — the storage engine's recovery shape.
	re := NewStore(2)
	if err := re.RestoreMeter(9, []*symbolic.Table{table}, sink.sealed); err != nil {
		t.Fatal(err)
	}
	sealedPts := 0
	for _, sb := range sink.sealed {
		sealedPts += sb.N
	}
	var tail []symbolic.SymbolPoint
	for i := sealedPts; i < n; i++ {
		tail = append(tail, symbolic.SymbolPoint{T: int64(i) * 900, S: table.Encode(float64(i * 13 % 900))})
	}
	if _, err := re.Append(9, tail); err != nil {
		t.Fatal(err)
	}
	gs, ok := re.Snapshot(9)
	if !ok {
		t.Fatal("restored meter missing")
	}
	ws, _ := src.Snapshot(9)
	if len(gs.Points) != len(ws.Points) {
		t.Fatalf("points: %d vs %d", len(gs.Points), len(ws.Points))
	}
	for i := range gs.Points {
		if gs.Points[i] != ws.Points[i] {
			t.Fatalf("point %d: %+v vs %+v", i, gs.Points[i], ws.Points[i])
		}
	}
	m, _ := re.Meter(9)
	if m.SealedBlocks() != len(sink.sealed) || !m.TimeOrdered() {
		t.Fatalf("restored index: %d sealed, ordered=%v", m.SealedBlocks(), m.TimeOrdered())
	}
	// A restored meter must not hand its last sealed block out as a tail:
	// appending a point that would extend its progression must open a new
	// block, never mutate published state.
	if got, want := m.TotalSymbols(), n+0; got != want {
		t.Fatalf("restored total %d, want %d", got, want)
	}
}

func TestRestoreMeterValidates(t *testing.T) {
	table := testTable(t)
	level := table.Level()
	k := table.K()
	good := func() SealedBlock {
		payload := make([]byte, (2*level+7)/8)
		symbolic.PackSymbolAt(payload, level, 0, 1)
		symbolic.PackSymbolAt(payload, level, 1, 2)
		hist := make([]uint32, k)
		hist[1], hist[2] = 1, 1
		return SealedBlock{
			Epoch: 0, Level: level, N: 2, FirstT: 0, Stride: 900,
			Sum: 3, MinV: 1, MaxV: 2, Payload: payload, Hist: hist,
		}
	}
	cases := map[string]func(*SealedBlock){
		"bad epoch":        func(b *SealedBlock) { b.Epoch = 5 },
		"bad level":        func(b *SealedBlock) { b.Level = level + 1 },
		"zero count":       func(b *SealedBlock) { b.N = 0 },
		"oversized count":  func(b *SealedBlock) { b.N = BlockCap + 1 },
		"short payload":    func(b *SealedBlock) { b.Payload = b.Payload[:0] },
		"negative stride":  func(b *SealedBlock) { b.Stride = -1 },
		"overflow stride":  func(b *SealedBlock) { b.FirstT = math.MaxInt64 - 10; b.Stride = 900 },
		"single w/ stride": func(b *SealedBlock) { b.N = 1; b.Stride = 900 },
		"hist wrong k":     func(b *SealedBlock) { b.Hist = b.Hist[:k-1] },
		"hist wrong mass":  func(b *SealedBlock) { b.Hist[0] = 7 },
	}
	for name, mutate := range cases {
		st := NewStore(1)
		blk := good()
		mutate(&blk)
		if err := st.RestoreMeter(1, []*symbolic.Table{table}, []SealedBlock{blk}); err == nil {
			t.Errorf("%s: restore accepted a corrupt block", name)
		}
	}
	// The untouched block must pass (the cases above fail for their stated
	// reason, not because the fixture is broken).
	st := NewStore(1)
	if err := st.RestoreMeter(1, []*symbolic.Table{table}, []SealedBlock{good()}); err != nil {
		t.Errorf("valid block rejected: %v", err)
	}
	if err := st.RestoreMeter(1, []*symbolic.Table{table}, nil); err == nil {
		t.Error("second restore of the same meter must be refused")
	}
}
