package server

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"symmeter/internal/timeseries"
	"symmeter/internal/transport"
)

// startService listens on an ephemeral port and cleans up with the test.
func startService(t *testing.T, shards int) (*Service, string) {
	t.Helper()
	svc := New(Config{Shards: shards})
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc, addr.String()
}

// waitSessionErr polls until the service records an error matching target.
func waitSessionErr(t *testing.T, svc *Service, target error) error {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, err := range svc.SessionErrors() {
			if errors.Is(err, target) {
				return err
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no session error matching %v; have %v", target, svc.SessionErrors())
	return nil
}

// TestFleet64ConcurrentMeters drives 64 simultaneous sensors over real TCP
// — the concurrency acceptance test; run under -race.
func TestFleet64ConcurrentMeters(t *testing.T) {
	const meters = 64
	svc, addr := startService(t, 8)
	rep, err := RunFleet(addr, FleetConfig{
		Meters:        meters,
		Days:          1,
		SecondsPerDay: 600,
		Window:        60,
		Seed:          1,
		DisableGaps:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.AwaitSessions(meters, 10*time.Second)
	svc.Drain()
	rep.Evaluate(svc.Store())

	if errs := svc.SessionErrors(); len(errs) != 0 {
		t.Fatalf("session errors: %v", errs)
	}
	if got := len(svc.Store().Meters()); got != meters {
		t.Fatalf("store meters = %d, want %d", got, meters)
	}
	wantSymbols := 600 / 60 // gap-free prefix → one symbol per full window
	for _, m := range rep.Meters {
		if m.Err != nil {
			t.Fatalf("meter %d: %v", m.MeterID, m.Err)
		}
		if m.Sent != 600 {
			t.Fatalf("meter %d sent %d, want 600", m.MeterID, m.Sent)
		}
		if m.Symbols != wantSymbols {
			t.Fatalf("meter %d symbols = %d, want %d", m.MeterID, m.Symbols, wantSymbols)
		}
		if m.Matched != m.Symbols {
			t.Fatalf("meter %d matched %d of %d symbols against truth", m.MeterID, m.Matched, m.Symbols)
		}
		if m.MAE < 0 {
			t.Fatalf("meter %d MAE = %v", m.MeterID, m.MAE)
		}
	}
	st := svc.Stats()
	if st.Symbols != int64(meters*wantSymbols) {
		t.Fatalf("service symbols = %d, want %d", st.Symbols, meters*wantSymbols)
	}
	if st.Sessions != meters || st.Active != 0 {
		t.Fatalf("sessions = %d active = %d", st.Sessions, st.Active)
	}
	if st.BytesIn == 0 {
		t.Fatal("no bytes counted on the wire")
	}
}

// TestFleetRelearnMidStream exercises concurrent mid-stream UpdateTable
// ('T' frames between symbol batches) across overlapping sessions.
func TestFleetRelearnMidStream(t *testing.T) {
	svc, addr := startService(t, 4)
	rep, err := RunFleet(addr, FleetConfig{
		Meters:        8,
		Days:          3,
		SecondsPerDay: 600,
		Window:        60,
		Seed:          3,
		RelearnPerDay: true,
		DisableGaps:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.AwaitSessions(8, 10*time.Second)
	svc.Drain()
	rep.Evaluate(svc.Store())
	if errs := svc.SessionErrors(); len(errs) != 0 {
		t.Fatalf("session errors: %v", errs)
	}
	for _, m := range rep.Meters {
		if m.Err != nil {
			t.Fatalf("meter %d: %v", m.MeterID, m.Err)
		}
		st, ok := svc.Store().Snapshot(m.MeterID)
		if !ok {
			t.Fatalf("meter %d missing from store", m.MeterID)
		}
		if len(st.Tables) != 3 { // initial + one relearn per non-final day
			t.Fatalf("meter %d tables = %d, want 3", m.MeterID, len(st.Tables))
		}
		if m.Matched != m.Symbols {
			t.Fatalf("meter %d matched %d of %d", m.MeterID, m.Matched, m.Symbols)
		}
	}
}

// rawConn dials and returns a connection for hand-crafted frames.
func rawConn(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// writeRawFrame emits an arbitrary frame header + payload prefix, for
// protocol-abuse tests.
func writeRawFrame(t *testing.T, w io.Writer, typ byte, claimLen uint32, payload []byte) {
	t.Helper()
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], claimLen)
	if _, err := w.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
}

// expectClosed asserts the server hangs up on us (no hang: bounded by a
// read deadline).
func expectClosed(t *testing.T, conn net.Conn) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("expected server to close the connection")
	} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Fatal("server hung instead of closing the connection")
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	svc, addr := startService(t, 2)
	conn := rawConn(t, addr)
	payload := make([]byte, 9)
	payload[0] = 99 // future protocol version
	binary.BigEndian.PutUint64(payload[1:], 1)
	writeRawFrame(t, conn, transport.FrameHandshake, 9, payload)
	waitSessionErr(t, svc, transport.ErrVersionMismatch)
	expectClosed(t, conn)
}

func TestTruncatedHandshakeRejected(t *testing.T) {
	svc, addr := startService(t, 2)
	conn := rawConn(t, addr)
	// Claim 9 payload bytes, deliver 3, hang up.
	writeRawFrame(t, conn, transport.FrameHandshake, 9, []byte{transport.ProtocolVersion, 0, 0})
	conn.(*net.TCPConn).CloseWrite()
	err := waitSessionErr(t, svc, transport.ErrBadHandshake)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("error %v does not wrap ErrUnexpectedEOF", err)
	}
}

func TestShortHandshakePayloadRejected(t *testing.T) {
	svc, addr := startService(t, 2)
	conn := rawConn(t, addr)
	// A complete frame whose payload is simply too short to be a handshake.
	writeRawFrame(t, conn, transport.FrameHandshake, 3, []byte{transport.ProtocolVersion, 0, 0})
	waitSessionErr(t, svc, transport.ErrBadHandshake)
	expectClosed(t, conn)
}

func TestOversizedFrameRejected(t *testing.T) {
	svc, addr := startService(t, 2)
	conn := rawConn(t, addr)
	if err := transport.WriteHandshake(conn, 42); err != nil {
		t.Fatal(err)
	}
	// Header claims a payload beyond MaxFrame; no bytes follow. The server
	// must reject from the header alone rather than waiting for data.
	writeRawFrame(t, conn, transport.FrameTable, transport.MaxFrame+1, nil)
	waitSessionErr(t, svc, transport.ErrFrameTooLarge)
	expectClosed(t, conn)
}

func TestDuplicateMeterRejected(t *testing.T) {
	svc, addr := startService(t, 2)
	first := rawConn(t, addr)
	if err := transport.WriteHandshake(first, 5); err != nil {
		t.Fatal(err)
	}
	// Wait until the first session is registered before racing it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := svc.Store().Snapshot(5); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first session never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}

	second := rawConn(t, addr)
	if err := transport.WriteHandshake(second, 5); err != nil {
		t.Fatal(err)
	}
	waitSessionErr(t, svc, ErrDuplicateMeter)
	// The refusal is typed now: a parting 'X' frame with VerdictBusy tells
	// the client the meter has a live session (retryable after reap), then
	// the connection closes.
	second.SetReadDeadline(time.Now().Add(5 * time.Second))
	fr := transport.NewFrameReader(second)
	typ, payload, err := fr.Next()
	if err != nil || typ != transport.FrameQueryError {
		t.Fatalf("parting frame: typ=%#x err=%v", typ, err)
	}
	var res transport.QueryResult
	var qe *transport.QueryError
	if err := transport.DecodeQueryResponse(typ, payload, &res); !errors.As(err, &qe) || qe.Code != transport.VerdictBusy {
		t.Fatalf("parting verdict: err=%v", err)
	}
	expectClosed(t, second)

	// The original session is unaffected: it can still finish cleanly.
	table := testTable(t)
	sensor, err := transport.NewSensor(first, table, 60, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 120; i++ {
		if err := sensor.Push(timeseries.Point{T: i, V: 100}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sensor.Close(); err != nil {
		t.Fatal(err)
	}
	first.Close()
	svc.AwaitSessions(2, 10*time.Second)
	svc.Drain()
	st, _ := svc.Store().Snapshot(5)
	if len(st.Points) != 2 {
		t.Fatalf("meter 5 points = %d, want 2", len(st.Points))
	}
}

// TestAbruptDisconnectMidBatch kills a connection inside a symbol frame and
// verifies the session is torn down without poisoning its shard: committed
// state survives, the same meter can reconnect, and an unrelated meter on
// the same shard streams through untouched.
func TestAbruptDisconnectMidBatch(t *testing.T) {
	svc, addr := startService(t, 2)
	table := testTable(t)

	const victim uint64 = 7
	conn := rawConn(t, addr)
	if err := transport.WriteHandshake(conn, victim); err != nil {
		t.Fatal(err)
	}
	sensor, err := transport.NewSensor(conn, table, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	// One complete window commits one batch...
	for i := int64(0); i < 70; i++ {
		if err := sensor.Push(timeseries.Point{T: i, V: 250}); err != nil {
			t.Fatal(err)
		}
	}
	// ...then a torn frame: a symbol header claiming 64 bytes, 4 delivered.
	writeRawFrame(t, conn, transport.FrameSymbol, 64, []byte{0, 0, 0, 0})
	conn.Close()
	waitSessionErr(t, svc, io.ErrUnexpectedEOF)

	// Committed state survived the teardown.
	st, ok := svc.Store().Snapshot(victim)
	if !ok || len(st.Points) != 1 {
		t.Fatalf("victim snapshot = %+v ok=%v, want 1 committed point", st, ok)
	}

	// Another meter on the same shard, and the victim itself, both stream
	// fine afterwards.
	sameShard := victim + 1
	for svc.Store().ShardFor(sameShard) != svc.Store().ShardFor(victim) {
		sameShard++
	}
	for _, id := range []uint64{sameShard, victim} {
		c := rawConn(t, addr)
		if err := transport.WriteHandshake(c, id); err != nil {
			t.Fatal(err)
		}
		s2, err := transport.NewSensor(c, table, 60, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 120; i++ {
			if err := s2.Push(timeseries.Point{T: 1000 + i, V: 500}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	svc.AwaitSessions(3, 10*time.Second)
	svc.Drain()
	// Points t=1000..1119 span windows [960,1020) [1020,1080) [1080,1140)
	// → 3 symbols per clean session.
	st, _ = svc.Store().Snapshot(victim)
	if len(st.Points) != 1+3 || st.Sessions != 2 {
		t.Fatalf("victim after reconnect: %d points, %d sessions", len(st.Points), st.Sessions)
	}
	if st2, _ := svc.Store().Snapshot(sameShard); len(st2.Points) != 3 {
		t.Fatalf("shard-mate points = %d, want 3", len(st2.Points))
	}
}

// TestCloseInterruptsIdleSessions makes sure Close does not wait on a
// connection that is sitting in a blocking read.
func TestCloseInterruptsIdleSessions(t *testing.T) {
	svc, addr := startService(t, 2)
	conn := rawConn(t, addr)
	if err := transport.WriteHandshake(conn, 11); err != nil {
		t.Fatal(err)
	}
	// Give the session time to block in its frame read.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := svc.Store().Snapshot(11); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	done := make(chan struct{})
	go func() {
		svc.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on an idle session")
	}
}
