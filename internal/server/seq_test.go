// Sequenced-session protocol tests: the acknowledged, exactly-once decode
// loop negotiated by FlagSequenced, the overload admission gate, graceful
// drain, half-closed peers, and the write-deadline reaping of consumers
// that stop reading. These drive raw frames over real TCP (or net.Pipe
// where the test needs a peer whose reads it fully controls).
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"symmeter/internal/symbolic"
	"symmeter/internal/transport"
)

// seqTableFrame builds a 'U' frame: a table push under seq.
func seqTableFrame(seq uint64, table *symbolic.Table) []byte {
	body := symbolic.MarshalTable(table)
	frame := make([]byte, 13, 13+len(body))
	frame[0] = transport.FrameSeqTable
	binary.BigEndian.PutUint32(frame[1:5], uint32(8+len(body)))
	binary.BigEndian.PutUint64(frame[5:13], seq)
	return append(frame, body...)
}

// seqBatchFrame builds a 'D' frame: symbols at firstT + i*window under seq.
func seqBatchFrame(t *testing.T, seq uint64, firstT, window int64, symbols []symbolic.Symbol) []byte {
	t.Helper()
	frame := make([]byte, 29)
	frame[0] = transport.FrameSeqSymbol
	binary.BigEndian.PutUint64(frame[5:13], seq)
	binary.BigEndian.PutUint64(frame[13:21], uint64(firstT))
	binary.BigEndian.PutUint64(frame[21:29], uint64(window))
	frame, err := symbolic.AppendPack(frame, symbols)
	if err != nil {
		t.Fatal(err)
	}
	binary.BigEndian.PutUint32(frame[1:5], uint32(len(frame)-5))
	return frame
}

// expectAck reads the next frame and requires it to be an ack for want.
func expectAck(t *testing.T, fr *transport.FrameReader, want uint64) {
	t.Helper()
	typ, payload, err := fr.Next()
	if err != nil {
		t.Fatalf("reading ack: %v", err)
	}
	if typ != transport.FrameAck {
		t.Fatalf("got %#x frame, want ack", typ)
	}
	seq, err := transport.DecodeAck(payload)
	if err != nil || seq != want {
		t.Fatalf("ack seq %d (err %v), want %d", seq, err, want)
	}
}

// expectRefusal reads the next frame and requires it to be an 'X' verdict
// addressed to wantSeq that errors.Is-matches sentinel.
func expectRefusal(t *testing.T, fr *transport.FrameReader, wantSeq uint64, sentinel error) {
	t.Helper()
	typ, payload, err := fr.Next()
	if err != nil {
		t.Fatalf("reading refusal: %v", err)
	}
	var res transport.QueryResult
	derr := transport.DecodeQueryResponse(typ, payload, &res)
	var qe *transport.QueryError
	if !errors.As(derr, &qe) {
		t.Fatalf("got %#x frame (decode %v), want typed refusal", typ, derr)
	}
	if res.ID != wantSeq || !errors.Is(qe, sentinel) {
		t.Fatalf("refusal id=%d err=%v, want id=%d matching %v", res.ID, qe, wantSeq, sentinel)
	}
}

// sequencedDial opens a sequenced session and consumes the handshake ack,
// returning the connection, its frame reader, and the server's high-water
// mark.
func sequencedDial(t *testing.T, addr string, meterID uint64) (net.Conn, *transport.FrameReader, uint64) {
	t.Helper()
	conn := rawConn(t, addr)
	if err := transport.WriteHandshakeFlags(conn, meterID, transport.FlagSequenced); err != nil {
		t.Fatal(err)
	}
	fr := transport.NewFrameReader(conn)
	typ, payload, err := fr.Next()
	if err != nil || typ != transport.FrameAck {
		t.Fatalf("handshake reply: typ=%#x err=%v", typ, err)
	}
	hwm, err := transport.DecodeAck(payload)
	if err != nil {
		t.Fatal(err)
	}
	return conn, fr, hwm
}

// TestSequencedSessionExactlyOnce: the full acked flow — handshake ack at
// mark 0, table and batch commits acked in order, a retransmitted seq
// suppressed as a duplicate (acked, counted, not re-committed).
func TestSequencedSessionExactlyOnce(t *testing.T) {
	svc, addr := startService(t, 2)
	table := testTable(t)
	syms := make([]symbolic.Symbol, 4)
	for i := range syms {
		syms[i] = table.Encode(float64(100 + i))
	}

	conn, fr, hwm := sequencedDial(t, addr, 7)
	if hwm != 0 {
		t.Fatalf("fresh meter high-water mark %d, want 0", hwm)
	}
	if _, err := conn.Write(seqTableFrame(1, table)); err != nil {
		t.Fatal(err)
	}
	expectAck(t, fr, 1)
	batch := seqBatchFrame(t, 2, 0, 60, syms)
	if _, err := conn.Write(batch); err != nil {
		t.Fatal(err)
	}
	expectAck(t, fr, 2)
	// Retransmit seq 2 — the lost-ack case. Acked again, committed once.
	if _, err := conn.Write(batch); err != nil {
		t.Fatal(err)
	}
	expectAck(t, fr, 2)
	writeRawFrame(t, conn, transport.FrameEnd, 0, nil)
	if !svc.AwaitSessions(1, 5*time.Second) {
		t.Fatal("session never completed")
	}
	conn.Close()

	if errs := svc.SessionErrors(); len(errs) != 0 {
		t.Fatalf("session errors: %v", errs)
	}
	st, ok := svc.Store().Snapshot(7)
	if !ok || len(st.Points) != len(syms) {
		t.Fatalf("store holds %d points (ok=%v), want %d — duplicate committed?", len(st.Points), ok, len(syms))
	}
	stats := svc.Stats()
	if stats.SequencedSessions != 1 || stats.DuplicateBatches != 1 {
		t.Fatalf("stats: sequenced=%d dups=%d, want 1/1", stats.SequencedSessions, stats.DuplicateBatches)
	}
	if got := svc.Store().LastSeq(7); got != 2 {
		t.Fatalf("LastSeq after session: %d, want 2", got)
	}
}

// TestSequencedReconnectLearnsHighWaterMark: an abrupt disconnect, then a
// new sequenced session for the same meter whose handshake ack carries the
// committed mark — the client resumes instead of replaying history.
func TestSequencedReconnectLearnsHighWaterMark(t *testing.T) {
	svc, addr := startService(t, 2)
	table := testTable(t)
	syms := []symbolic.Symbol{table.Encode(1), table.Encode(2)}

	conn, fr, _ := sequencedDial(t, addr, 3)
	conn.Write(seqTableFrame(1, table))
	expectAck(t, fr, 1)
	conn.Write(seqBatchFrame(t, 2, 0, 60, syms))
	expectAck(t, fr, 2)
	conn.Close() // no 'E': abrupt mid-stream death
	waitSessionErr(t, svc, io.ErrUnexpectedEOF)

	conn2, fr2, hwm := sequencedDial(t, addr, 3)
	defer conn2.Close()
	if hwm != 2 {
		t.Fatalf("reconnect high-water mark %d, want 2", hwm)
	}
	conn2.Write(seqBatchFrame(t, 3, 120, 60, syms))
	expectAck(t, fr2, 3)
	writeRawFrame(t, conn2, transport.FrameEnd, 0, nil)
	if !svc.AwaitSessions(2, 5*time.Second) {
		t.Fatal("reconnect session never completed")
	}
	if n := svc.Stats().ReconnectReplays; n != 1 {
		t.Fatalf("ReconnectReplays = %d, want 1", n)
	}
	st, _ := svc.Store().Snapshot(3)
	if len(st.Points) != 4 {
		t.Fatalf("store holds %d points, want 4", len(st.Points))
	}
}

// TestSequencedGapTearsDown: a seq that skips ahead is a protocol violation
// — the session dies with ErrSeqGap rather than committing out of order,
// and nothing from the gapped frame lands in the store.
func TestSequencedGapTearsDown(t *testing.T) {
	svc, addr := startService(t, 2)
	table := testTable(t)

	conn, fr, _ := sequencedDial(t, addr, 5)
	conn.Write(seqTableFrame(1, table))
	expectAck(t, fr, 1)
	conn.Write(seqBatchFrame(t, 9, 0, 60, []symbolic.Symbol{table.Encode(1)}))
	waitSessionErr(t, svc, ErrSeqGap)
	expectClosed(t, conn)
	if st, _ := svc.Store().Snapshot(5); len(st.Points) != 0 {
		t.Fatalf("gapped frame committed %d points", len(st.Points))
	}
}

// refuseOnceIngest wraps the store's SequencedIngest and refuses the first
// AppendSeq with a typed overload — the per-batch retryable refusal path.
type refuseOnceIngest struct {
	*Store
	refused bool
}

func (r *refuseOnceIngest) AppendSeq(meterID, seq uint64, pts []symbolic.SymbolPoint) (int, bool, error) {
	if !r.refused {
		r.refused = true
		return 0, false, fmt.Errorf("%w: synthetic refusal", ErrOverloaded)
	}
	return r.Store.AppendSeq(meterID, seq, pts)
}

// TestSequencedRetryableRefusalKeepsSession: a typed overload refusal is
// answered with an 'X' addressed to the refused seq, the session stays up,
// and resending the SAME seq commits — the client-visible backoff contract.
func TestSequencedRetryableRefusalKeepsSession(t *testing.T) {
	svc := New(Config{Shards: 2})
	svc.SetIngest(&refuseOnceIngest{Store: svc.Store()})
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	table := testTable(t)
	syms := []symbolic.Symbol{table.Encode(5)}

	conn, fr, _ := sequencedDial(t, addr.String(), 11)
	conn.Write(seqTableFrame(1, table))
	expectAck(t, fr, 1)
	batch := seqBatchFrame(t, 2, 0, 60, syms)
	conn.Write(batch)
	expectRefusal(t, fr, 2, transport.ErrServerOverloaded)
	conn.Write(batch) // same seq, after "backoff"
	expectAck(t, fr, 2)
	writeRawFrame(t, conn, transport.FrameEnd, 0, nil)
	if !svc.AwaitSessions(1, 5*time.Second) {
		t.Fatal("session never completed")
	}
	conn.Close()
	if errs := svc.SessionErrors(); len(errs) != 0 {
		t.Fatalf("refusal killed the session: %v", errs)
	}
	if st, _ := svc.Store().Snapshot(11); len(st.Points) != 1 {
		t.Fatalf("store holds %d points, want 1", len(st.Points))
	}
}

// TestOverloadGate pins acquireIngest's admission arithmetic: budget
// exhaustion refuses with ErrOverloaded, release restores admission, and a
// batch arriving at an idle shard is always admitted no matter its size.
func TestOverloadGate(t *testing.T) {
	svc := New(Config{Shards: 2, IngestBudget: 100})
	defer svc.Close()
	// Two meters on the same shard.
	m1, m2 := uint64(1), uint64(0)
	for m := uint64(2); ; m++ {
		if svc.Store().ShardFor(m) == svc.Store().ShardFor(m1) {
			m2 = m
			break
		}
	}
	if err := svc.acquireIngest(m1, 64); err != nil {
		t.Fatalf("first batch refused: %v", err)
	}
	if err := svc.acquireIngest(m2, 64); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-budget batch: got %v, want ErrOverloaded", err)
	}
	if n := svc.Stats().OverloadRefusals; n != 1 {
		t.Fatalf("OverloadRefusals = %d, want 1", n)
	}
	svc.releaseIngest(m1, 64)
	if err := svc.acquireIngest(m2, 64); err != nil {
		t.Fatalf("batch after release refused: %v", err)
	}
	svc.releaseIngest(m2, 64)
	// Oversized batch at an idle shard: admitted, cannot starve.
	if err := svc.acquireIngest(m1, 100000); err != nil {
		t.Fatalf("oversized batch at idle shard refused: %v", err)
	}
	svc.releaseIngest(m1, 100000)
}

// TestDrainRefusesNewSessions: after BeginDrain, a new ingest handshake is
// answered with a parting VerdictDraining and a new query session gets the
// same verdict addressed to its first request — typed, retryable, counted.
func TestDrainRefusesNewSessions(t *testing.T) {
	svc, addr := startService(t, 2)
	svc.BeginDrain()

	// Ingest: handshake, then the typed parting frame, then close.
	conn := rawConn(t, addr)
	if err := transport.WriteHandshake(conn, 1); err != nil {
		t.Fatal(err)
	}
	fr := transport.NewFrameReader(conn)
	expectRefusal(t, fr, 0, transport.ErrServerDraining)
	waitSessionErr(t, svc, ErrDraining)
	expectClosed(t, conn)

	// Query: the first request is answered with the draining verdict.
	qconn := rawConn(t, addr)
	req := transport.QueryRequest{ID: 42, Op: transport.OpCount, MeterID: 1, T0: 0, T1: 100}
	if _, err := qconn.Write(transport.AppendQueryRequestFrame(nil, req)); err != nil {
		t.Fatal(err)
	}
	expectRefusal(t, transport.NewFrameReader(qconn), 42, transport.ErrServerDraining)
	qconn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().DrainRefusals < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("DrainRefusals = %d, want 2", svc.Stats().DrainRefusals)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestHalfClosedConnReapedAndMeterFreed: a peer that FINs its write side
// mid-session (CloseWrite, read side still open) is reaped immediately as
// an abrupt disconnect — not parked until the idle timeout — and its meter
// registration is freed for a clean reconnect.
func TestHalfClosedConnReapedAndMeterFreed(t *testing.T) {
	svc, addr := startService(t, 2)
	const meter uint64 = 13

	conn := rawConn(t, addr)
	if err := transport.WriteHandshake(conn, meter); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := svc.Store().Snapshot(meter); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	waitSessionErr(t, svc, io.ErrUnexpectedEOF)
	// The server closes the connection outright; our still-open read side
	// observes it rather than hanging.
	expectClosed(t, conn)
	conn.Close()

	// The reaped registration is free: the meter reconnects and completes.
	conn2, fr2, _ := sequencedDial(t, addr, meter)
	defer conn2.Close()
	table := testTable(t)
	conn2.Write(seqTableFrame(1, table))
	expectAck(t, fr2, 1)
	writeRawFrame(t, conn2, transport.FrameEnd, 0, nil)
	if !svc.AwaitSessions(2, 5*time.Second) {
		t.Fatal("reconnect session never completed")
	}
	for _, err := range svc.SessionErrors() {
		if errors.Is(err, ErrDuplicateMeter) {
			t.Fatalf("half-closed session still holds the meter: %v", err)
		}
	}
}

// TestWriteDeadlineReapsSlowConsumer: a peer that opens a sequenced session
// and then never reads wedges the server's ack write; the write deadline
// fails it, the session tears down, and the reap is counted — instead of a
// goroutine parked forever on a full socket.
func TestWriteDeadlineReapsSlowConsumer(t *testing.T) {
	svc := New(Config{Shards: 2, WriteTimeout: 150 * time.Millisecond})
	t.Cleanup(func() { svc.Close() })
	ln := &stubListener{ch: make(chan acceptResult, 1)}
	serverEnd, clientEnd := net.Pipe() // writes block until the peer reads
	ln.ch <- acceptResult{conn: serverEnd}
	done := make(chan struct{})
	go func() {
		svc.serve(ln, false)
		close(done)
	}()

	if err := transport.WriteHandshakeFlags(clientEnd, 2, transport.FlagSequenced); err != nil {
		t.Fatal(err)
	}
	// Never read: the handshake ack cannot be delivered.
	waitSessionErr(t, svc, os.ErrDeadlineExceeded)
	if n := svc.Stats().WriteDeadlineReaps; n != 1 {
		t.Fatalf("WriteDeadlineReaps = %d, want 1", n)
	}
	clientEnd.Close()
	close(ln.ch)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return on listener close")
	}
}
