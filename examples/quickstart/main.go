// Quickstart: learn a lookup table from historical smart-meter data, stream
// new measurements through the online encoder, and reconstruct approximate
// values on the receiving side — the paper's sensor → aggregation-server
// flow in ~60 lines.
package main

import (
	"fmt"
	"log"

	"symmeter/internal/dataset"
	"symmeter/internal/symbolic"
)

func main() {
	// A synthetic house: two days of history plus one fresh day, at 1 Hz.
	// Gaps are disabled so the reconstruction comparison below aligns
	// window-for-window with the truth.
	gen := dataset.New(dataset.Config{Seed: 7, Houses: 1, Days: 3, DisableGaps: true})

	// 1. Sensor side: learn the lookup table from two days of history
	//    (the paper's bootstrap), using the median method and 16 symbols.
	var builder symbolic.TableBuilder
	builder.PushSeries(gen.HouseDay(0, 0))
	builder.PushSeries(gen.HouseDay(0, 1))
	table, err := builder.Build(symbolic.MethodMedian, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("learned", table)

	// The table ships to the aggregation server once; symbols flow after.
	wire := symbolic.MarshalTable(table)
	fmt.Printf("lookup table wire size: %d bytes (amortised over the stream)\n\n", len(wire))

	// 2. Stream day 3 through the online encoder with 15-minute vertical
	//    segmentation: 86400 measurements become 96 symbols.
	today := gen.HouseDay(0, 2)
	encoded, err := symbolic.EncodeSeries(today, table, 900)
	if err != nil {
		log.Fatal(err)
	}
	packed, err := symbolic.Pack(encoded.Symbols())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 3: %d raw measurements -> %d symbols -> %d packed bytes (raw: %d bytes)\n",
		today.Len(), encoded.Len(), len(packed), symbolic.RawSize(today.Len()))
	fmt.Printf("first 3 hours of symbols: %s ...\n\n", encoded.Strings()[:12])

	// 3. Server side: decode the table and symbols, reconstruct values.
	serverTable, err := symbolic.UnmarshalTable(wire)
	if err != nil {
		log.Fatal(err)
	}
	symbols, err := symbolic.Unpack(packed)
	if err != nil {
		log.Fatal(err)
	}
	recon := &symbolic.SymbolSeries{Name: "house1", Table: serverTable}
	for i, s := range symbols {
		recon.Points = append(recon.Points, symbolic.SymbolPoint{
			T: encoded.Points[i].T, S: s,
		})
	}
	values, err := recon.Reconstruct()
	if err != nil {
		log.Fatal(err)
	}

	// Compare the reconstruction against the true 15-minute averages.
	truth := today.Resample(900)
	var mae float64
	for i := range values.Points {
		d := values.Points[i].V - truth.Points[i].V
		if d < 0 {
			d = -d
		}
		mae += d
	}
	mae /= float64(values.Len())
	fmt.Printf("reconstruction MAE vs true 15-min averages: %.1f W (house mean %.1f W)\n",
		mae, today.Summary().Mean)
}
