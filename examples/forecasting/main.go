// Next-day hourly load forecasting over symbols (the paper's §3.2
// scenario): one week of history, 12 lag symbols, next-symbol
// classification, predicted symbols mapped to range centers — compared
// with an ε-SVR over the raw values.
package main

import (
	"fmt"
	"log"

	"symmeter/internal/experiments"
	"symmeter/internal/symbolic"
)

func main() {
	p := experiments.NewPipeline(experiments.Config{Seed: 5, Houses: 6, Days: 16})

	fmt.Println("next-day hourly forecasting, one week of history, 12 lag symbols, k=16")
	fmt.Println("(MAE in watts over the test day; '-' = not enough data, like house 5)")
	fmt.Println()

	configs := []struct {
		label string
		cfg   experiments.ForecastConfig
	}{
		{"raw (SVR)", experiments.ForecastConfig{Method: symbolic.MethodNone}},
		{"median + NaiveBayes", experiments.ForecastConfig{Method: symbolic.MethodMedian, Model: experiments.ModelNaiveBayes}},
		{"median + RandomForest", experiments.ForecastConfig{Method: symbolic.MethodMedian, Model: experiments.ModelRandomForest}},
		{"uniform + NaiveBayes", experiments.ForecastConfig{Method: symbolic.MethodUniform, Model: experiments.ModelNaiveBayes}},
	}

	fmt.Printf("%-24s", "model")
	for h := 1; h <= p.Config().Houses; h++ {
		fmt.Printf(" %8s", fmt.Sprintf("house %d", h))
	}
	fmt.Println()
	for _, c := range configs {
		results, err := p.ForecastAll(c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s", c.label)
		for _, r := range results {
			if r.Skipped {
				fmt.Printf(" %8s", "-")
			} else {
				fmt.Printf(" %8.1f", r.MAE)
			}
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("symbolic forecasting predicts the *symbol* for the next hour and uses")
	fmt.Println("the center of its range as the value — despite that quantisation it is")
	fmt.Println("competitive with raw-value SVR, and on several houses beats it (Figs.")
	fmt.Println("8/9). which method wins depends on the value distribution: on spiky")
	fmt.Println("data, uniform's narrow high-power bins give better range centers than")
	fmt.Println("median's wide top bins.")
}
