// Customer segmentation as clustering: group house-days by similarity and
// check how well the groups recover the houses. The interesting twist
// relative to the paper's classification experiments (Figs. 5-7): clustering
// compares series *across* customers, so it needs the single global lookup
// table — the same table mode that hurts classification is the one that
// makes cross-customer distances meaningful.
package main

import (
	"fmt"
	"log"

	"symmeter/internal/experiments"
	"symmeter/internal/symbolic"
)

func main() {
	p := experiments.NewPipeline(experiments.Config{Seed: 4, Houses: 5, Days: 12})

	fmt.Println("k-medoids over house-days, k = number of houses")
	fmt.Println("(purity / adjusted Rand index against the true house labels)")
	fmt.Println()
	rows, err := p.RunClustering(experiments.ClusterConfig{
		Seed:   4,
		Method: symbolic.MethodMedian,
		K:      8,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := experiments.WriteClustering(out{}, rows); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("the symbolic value-gap distance tracks the raw L1 clustering at a")
	fmt.Println("fraction of the data size; plain Hamming over symbols can even win,")
	fmt.Println("because ignoring magnitudes is robust to day-to-day occupancy swings —")
	fmt.Println("pick the distance to match the analytics, as §4 argues.")
}

type out struct{}

func (out) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
