// Anomaly detection and routine mining over symbols: motifs (repeated
// symbol words) recover a household's daily routine, and the discord (the
// subsequence farthest from any other) pinpoints the anomalous day — all
// computed on the compressed symbolic stream, never touching raw data.
package main

import (
	"fmt"
	"log"

	"symmeter/internal/dataset"
	"symmeter/internal/symbolic"
	"symmeter/internal/timeseries"
)

func main() {
	// Two weeks of hourly consumption; on day 9 a heating element sticks on
	// and the house draws ~6 kW around the clock. (A subtler anomaly like
	// an empty house would *not* be the discord: its all-low profile looks
	// like every ordinary night, which is itself instructive.)
	gen := dataset.New(dataset.Config{Seed: 21, Houses: 1, Days: 14, DisableGaps: true})
	var pts []timeseries.Point
	for d := 0; d < 14; d++ {
		day := gen.HouseDay(0, d).Resample(3600)
		for _, p := range day.Points {
			if d == 9 {
				p.V += 6000 // stuck heater
			}
			pts = append(pts, p)
		}
	}
	series := timeseries.MustNew("house1", pts)

	var builder symbolic.TableBuilder
	builder.PushSeries(series)
	table, err := builder.Build(symbolic.MethodUniform, 4)
	if err != nil {
		log.Fatal(err)
	}
	ss := symbolic.Horizontal(series, table)
	fmt.Printf("encoded %d hourly values with a %d-symbol table\n\n", ss.Len(), table.K())

	// Daily routine: the most common 4-hour words.
	motifs, err := symbolic.FindMotifs(ss, 4, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top routines (4-hour symbol words):")
	for _, m := range motifs {
		fmt.Printf("  %-14q %d occurrences\n", m.Word, m.Count())
	}

	// The anomaly: scan whole days (24 symbols).
	discord, err := symbolic.FindDiscord(ss, 24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiscord (most anomalous day-long window): starts at hour %d (day %d), distance %.0f\n",
		discord.Position, discord.Position/24, discord.Distance)
	fmt.Println("day 9 was planted as the stuck-heater day — found from symbols alone.")
}
