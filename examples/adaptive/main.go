// Adaptive lookup tables under seasonal drift (the paper's §4 future-work
// direction): a static table learned in winter mis-encodes summer load; the
// AdaptiveEncoder detects the symbol-distribution drift, relearns its table
// from recent window averages, and resends it — keeping reconstruction
// error flat across the season.
package main

import (
	"fmt"
	"log"

	"symmeter/internal/experiments"
)

func main() {
	fmt.Println("one house, 60 days, HVAC load swinging ±90% over a 90-day season")
	fmt.Println("table learned from days 0-1 (static) vs relearned on drift (adaptive)")
	fmt.Println()
	res, err := experiments.RunDrift(experiments.DriftConfig{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	if err := experiments.WriteDrift(stdout{}, res); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("the static table's error grows as the season departs from the")
	fmt.Println("training days; each adaptive update re-centres the separators on")
	fmt.Println("the current distribution at the cost of resending one small table.")
}

// stdout adapts fmt to io.Writer.
type stdout struct{}

func (stdout) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
