// Customer segmentation over symbolic data (the paper's §3.1 scenario):
// classify day-vectors by house with Naive Bayes and Random Forest, compare
// median/distinctmedian/uniform encodings against raw aggregates, and show
// the per-house-vs-global lookup-table effect.
package main

import (
	"fmt"
	"log"

	"symmeter/internal/experiments"
	"symmeter/internal/symbolic"
)

func main() {
	p := experiments.NewPipeline(experiments.Config{Seed: 2, Houses: 6, Days: 14})

	fmt.Println("customer segmentation: one instance per house-day, class = house")
	fmt.Println("(10-fold cross-validated weighted F-measure)")
	fmt.Println()

	encodings := []experiments.Encoding{
		{Method: symbolic.MethodMedian, Window: experiments.Window1h, K: 16},
		{Method: symbolic.MethodDistinctMedian, Window: experiments.Window1h, K: 16},
		{Method: symbolic.MethodUniform, Window: experiments.Window1h, K: 16},
		{Method: symbolic.MethodMedian, Window: experiments.Window1h, K: 16, GlobalTable: true},
		{Method: symbolic.MethodNone, Window: experiments.Window1h},
	}
	fmt.Printf("%-26s %12s %14s\n", "encoding", "NaiveBayes", "RandomForest")
	for _, enc := range encodings {
		nb, err := p.Classify(enc, experiments.ModelNaiveBayes)
		if err != nil {
			log.Fatal(err)
		}
		rf, err := p.Classify(enc, experiments.ModelRandomForest)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %12.2f %14.2f\n", enc, nb.F1, rf.F1)
	}

	fmt.Println()
	fmt.Println("reading the table like the paper does:")
	fmt.Println(" - median with per-house tables wins: the quantile separators")
	fmt.Println("   themselves encode house identity (Fig. 5/6);")
	fmt.Println(" - the global-table variant (median+ row) gives that advantage up")
	fmt.Println("   and drops toward the raw baseline (Fig. 7);")
	fmt.Println(" - uniform bins waste resolution on empty high-power ranges.")
}
