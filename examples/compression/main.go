// Compression-ratio walkthrough (the paper's §2.3): how vertical and
// horizontal segmentation granularity trade reconstruction accuracy against
// data size, measured on a real (synthetic) day of 1 Hz data.
package main

import (
	"fmt"
	"log"
	"math"

	"symmeter/internal/dataset"
	"symmeter/internal/experiments"
	"symmeter/internal/symbolic"
	"symmeter/internal/timeseries"
)

func main() {
	fmt.Println("§2.3 arithmetic (per day of 1 Hz doubles):")
	rows, err := experiments.CompressionTable()
	if err != nil {
		log.Fatal(err)
	}
	if err := experiments.WriteCompressionTable(fmtWriter{}, rows); err != nil {
		log.Fatal(err)
	}

	// Now measure what the compression costs in reconstruction accuracy.
	gen := dataset.New(dataset.Config{Seed: 11, Houses: 1, Days: 3, DisableGaps: true})
	var builder symbolic.TableBuilder
	builder.PushSeries(gen.HouseDay(0, 0))
	builder.PushSeries(gen.HouseDay(0, 1))
	today := gen.HouseDay(0, 2)

	fmt.Println()
	fmt.Println("accuracy cost on a real day (reconstruction MAE vs true window averages):")
	fmt.Printf("%-8s %-4s %12s %12s\n", "window", "k", "bytes/day", "MAE [W]")
	for _, window := range []int64{3600, 900} {
		truth := today.Resample(window)
		for _, k := range []int{2, 4, 8, 16} {
			table, err := builder.Build(symbolic.MethodMedian, k)
			if err != nil {
				log.Fatal(err)
			}
			encoded, err := symbolic.EncodeSeries(today, table, window)
			if err != nil {
				log.Fatal(err)
			}
			recon, err := encoded.Reconstruct()
			if err != nil {
				log.Fatal(err)
			}
			mae := meanAbsDiff(recon, truth)
			packed, err := symbolic.Pack(encoded.Symbols())
			if err != nil {
				log.Fatal(err)
			}
			win := "15m"
			if window == 3600 {
				win = "1h"
			}
			fmt.Printf("%-8s %-4d %12d %12.1f\n", win, k, len(packed), mae)
		}
	}
	fmt.Println()
	fmt.Printf("raw day: %d bytes; a 16-symbol/15m day costs ~4 orders of magnitude less\n",
		symbolic.RawSize(today.Len()))
}

func meanAbsDiff(a, b *timeseries.Series) float64 {
	n := a.Len()
	if b.Len() < n {
		n = b.Len()
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += math.Abs(a.Points[i].V - b.Points[i].V)
	}
	return sum / float64(n)
}

// fmtWriter adapts fmt printing to io.Writer for WriteCompressionTable.
type fmtWriter struct{}

func (fmtWriter) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
