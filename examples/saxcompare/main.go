// SAX vs symmeter (the paper's §2.2 argument, Fig. 3): per-series
// z-normalisation makes SAX blind to consumption *level*, collapsing a big
// consumer and a small consumer with the same shape onto one word. The
// paper's absolute, data-driven lookup tables keep them apart — which is
// exactly what customer segmentation needs.
package main

import (
	"fmt"
	"log"

	"symmeter/internal/experiments"
	"symmeter/internal/sax"
)

func main() {
	consumers := experiments.Fig3Consumers()
	fmt.Println("four consumers: A,B big; C,D small; C shares A's shape, D shares B's")
	for _, c := range consumers {
		fmt.Printf("  %s: %v W\n", c.Name, c.Values)
	}

	saxRes, symRes, err := experiments.Fig3Compare()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("SAX (w=8, k=4, z-normalised):")
	for _, n := range []string{"A", "B", "C", "D"} {
		fmt.Printf("  %s -> %-10s nearest neighbour: %s\n", n, saxRes.Words[n], saxRes.NearestTo[n])
	}
	fmt.Println("symmeter (uniform table over the pooled range, k=4):")
	for _, n := range []string{"A", "B", "C", "D"} {
		fmt.Printf("  %s -> %-26s nearest neighbour: %s\n", n, symRes.Words[n], symRes.NearestTo[n])
	}

	// iSAX-style cross-resolution comparison also works on symmeter symbols
	// (the paper's §4 flexibility) — demonstrate the analogous iSAX feature.
	fmt.Println()
	fmt.Println("cross-resolution matching (iSAX-style):")
	enc8, err := sax.NewEncoder(8, 8)
	if err != nil {
		log.Fatal(err)
	}
	w8, err := enc8.Encode(consumers[0].Values)
	if err != nil {
		log.Fatal(err)
	}
	fine := sax.ToISAX(w8)
	coarse, err := fine.Demote(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  A at cardinality 8: %s\n", fine)
	fmt.Printf("  A at cardinality 2: %s\n", coarse)
	fmt.Printf("  fine matches coarse: %v\n", fine.Matches(coarse))
}
