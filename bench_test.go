// Package symmeter's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (one benchmark per artifact, named after it)
// plus micro-benchmarks of the core operations whose cost the paper argues
// about (encoding throughput, packing, table learning).
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// Figure/table benchmarks report the measured headline metric (F-measure ×
// 1000, MAE in watts, compression ratio) as custom units so the artifact's
// value is visible next to its cost.
package symmeter

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"symmeter/internal/benchref"
	"symmeter/internal/dataset"
	"symmeter/internal/experiments"
	"symmeter/internal/query"
	"symmeter/internal/sax"
	"symmeter/internal/server"
	"symmeter/internal/stats"
	"symmeter/internal/storage"
	"symmeter/internal/symbolic"
	"symmeter/internal/timeseries"
	"symmeter/internal/transport"
)

// benchCfg keeps figure benchmarks affordable: 6 houses, 12 days.
func benchPipeline(b *testing.B) *experiments.Pipeline {
	b.Helper()
	p := experiments.NewPipeline(experiments.Config{Seed: 1, Houses: 6, Days: 12})
	if err := p.Build(experiments.Window1h, experiments.Window15m); err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkFig1SymbolConstruction regenerates the recursive range-division
// table of Fig. 1.
func BenchmarkFig1SymbolConstruction(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Fig1SymbolConstruction(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Histogram regenerates the power-level distribution of Fig. 2.
func BenchmarkFig2Histogram(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := p.Fig2Histogram(0, 1)
		if err != nil {
			b.Fatal(err)
		}
		if h.Total() == 0 {
			b.Fatal("empty histogram")
		}
	}
}

// BenchmarkFig3Normalization regenerates the Fig. 3 grouping comparison.
func BenchmarkFig3Normalization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		saxRes, symRes, err := experiments.Fig3Compare()
		if err != nil {
			b.Fatal(err)
		}
		if saxRes.NearestTo["A"] != "C" || symRes.NearestTo["A"] != "B" {
			b.Fatal("grouping shape broke")
		}
	}
}

// BenchmarkFig4AccumulativeStats regenerates the convergence curves of
// Fig. 4 over one day.
func BenchmarkFig4AccumulativeStats(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Fig4AccumulativeStats(0, 1, 10000); err != nil {
			b.Fatal(err)
		}
	}
}

// classificationCell runs one Fig. 5/6/7 (or Table 1) cell and reports the
// F-measure as a custom metric.
func classificationCell(b *testing.B, enc experiments.Encoding, model experiments.ModelName) {
	p := benchPipeline(b)
	b.ResetTimer()
	var f1 float64
	for i := 0; i < b.N; i++ {
		res, err := p.Classify(enc, model)
		if err != nil {
			b.Fatal(err)
		}
		f1 = res.F1
	}
	b.ReportMetric(f1*1000, "mF1")
}

// BenchmarkFig5NaiveBayes runs the headline Fig. 5 cell (median 1h 16s, NB).
func BenchmarkFig5NaiveBayes(b *testing.B) {
	classificationCell(b,
		experiments.Encoding{Method: symbolic.MethodMedian, Window: experiments.Window1h, K: 16},
		experiments.ModelNaiveBayes)
}

// BenchmarkFig6RandomForest runs the headline Fig. 6 cell (median 1h 16s, RF).
func BenchmarkFig6RandomForest(b *testing.B) {
	classificationCell(b,
		experiments.Encoding{Method: symbolic.MethodMedian, Window: experiments.Window1h, K: 16},
		experiments.ModelRandomForest)
}

// BenchmarkFig7GlobalTable runs the Fig. 7 variant (single lookup table).
func BenchmarkFig7GlobalTable(b *testing.B) {
	classificationCell(b,
		experiments.Encoding{Method: symbolic.MethodMedian, Window: experiments.Window1h, K: 16, GlobalTable: true},
		experiments.ModelRandomForest)
}

// BenchmarkTable1Cell sweeps one representative Table 1 row per method,
// reporting F1; the full grid is cmd/experiments -run table1.
func BenchmarkTable1Cell(b *testing.B) {
	for _, m := range symbolic.Methods {
		b.Run(m.String(), func(b *testing.B) {
			classificationCell(b,
				experiments.Encoding{Method: m, Window: experiments.Window15m, K: 16},
				experiments.ModelJ48)
		})
	}
	b.Run("raw", func(b *testing.B) {
		classificationCell(b,
			experiments.Encoding{Method: symbolic.MethodNone, Window: experiments.Window15m},
			experiments.ModelJ48)
	})
}

// forecastCell runs one Fig. 8/9 series and reports the mean MAE over the
// houses that ran.
func forecastCell(b *testing.B, method symbolic.Method, model experiments.ModelName) {
	p := benchPipeline(b)
	b.ResetTimer()
	var mae float64
	for i := 0; i < b.N; i++ {
		results, err := p.ForecastAll(experiments.ForecastConfig{Method: method, Model: model})
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		n := 0
		for _, r := range results {
			if !r.Skipped {
				sum += r.MAE
				n++
			}
		}
		if n == 0 {
			b.Fatal("every house skipped")
		}
		mae = sum / float64(n)
	}
	b.ReportMetric(mae, "W-MAE")
}

// BenchmarkFig8ForecastNB runs the Fig. 8 symbolic series (median, NB).
func BenchmarkFig8ForecastNB(b *testing.B) {
	forecastCell(b, symbolic.MethodMedian, experiments.ModelNaiveBayes)
}

// BenchmarkFig8ForecastRawSVR runs the Fig. 8 baseline series (raw SVR).
func BenchmarkFig8ForecastRawSVR(b *testing.B) {
	forecastCell(b, symbolic.MethodNone, experiments.ModelNaiveBayes)
}

// BenchmarkFig9ForecastRF runs the Fig. 9 symbolic series (median, RF).
func BenchmarkFig9ForecastRF(b *testing.B) {
	forecastCell(b, symbolic.MethodMedian, experiments.ModelRandomForest)
}

// BenchmarkCompressionRatio regenerates the §2.3 table and reports the
// headline ratio (15m window, 16 symbols).
func BenchmarkCompressionRatio(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CompressionTable()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Window == experiments.Window15m && r.K == 16 {
				ratio = r.Stats.Ratio
			}
		}
	}
	b.ReportMetric(ratio, "ratio")
}

// --- Core-operation micro-benchmarks -------------------------------------

// benchSeries returns one day of 1 Hz data and a learned table.
func benchSeries(b *testing.B, k int) (*timeseries.Series, *symbolic.Table) {
	b.Helper()
	gen := dataset.New(dataset.Config{Seed: 2, Houses: 1, Days: 2, DisableGaps: true})
	day := gen.HouseDay(0, 1)
	var builder symbolic.TableBuilder
	builder.PushSeries(gen.HouseDay(0, 0))
	table, err := builder.Build(symbolic.MethodMedian, k)
	if err != nil {
		b.Fatal(err)
	}
	return day, table
}

// BenchmarkEncodeDay measures streaming a full 1 Hz day through the online
// encoder at 15-minute aggregation.
func BenchmarkEncodeDay(b *testing.B) {
	day, table := benchSeries(b, 16)
	b.SetBytes(int64(symbolic.RawSize(day.Len())))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := symbolic.EncodeSeries(day, table, 900); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeValue measures a single horizontal-segmentation lookup.
func BenchmarkEncodeValue(b *testing.B) {
	_, table := benchSeries(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table.Encode(float64(i % 4000))
	}
}

// BenchmarkLearnTable measures learning separators from two days of 1 Hz
// history for each method.
func BenchmarkLearnTable(b *testing.B) {
	gen := dataset.New(dataset.Config{Seed: 2, Houses: 1, Days: 2, DisableGaps: true})
	var vals []float64
	for d := 0; d < 2; d++ {
		vals = append(vals, gen.HouseDay(0, d).Values()...)
	}
	for _, m := range symbolic.Methods {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := symbolic.Learn(m, vals, 16); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLearnTableStreaming compares the O(k)-memory P²-based builder
// against the exact batch learner on the same two days of history.
func BenchmarkLearnTableStreaming(b *testing.B) {
	gen := dataset.New(dataset.Config{Seed: 2, Houses: 1, Days: 2, DisableGaps: true})
	var vals []float64
	for d := 0; d < 2; d++ {
		vals = append(vals, gen.HouseDay(0, d).Values()...)
	}
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := symbolic.Learn(symbolic.MethodMedian, vals, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("p2-streaming", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sb, err := symbolic.NewStreamingTableBuilder(16)
			if err != nil {
				b.Fatal(err)
			}
			for _, v := range vals {
				sb.Push(v)
			}
			if _, err := sb.Build(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lloydmax", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := symbolic.Learn(symbolic.MethodLloydMax, vals, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTransportDay measures streaming one full 1 Hz day through the
// sensor→server protocol in memory.
func BenchmarkTransportDay(b *testing.B) {
	day, table := benchSeries(b, 16)
	b.SetBytes(int64(symbolic.RawSize(day.Len())))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		sensor, err := transport.NewSensor(&buf, table, 900, 96)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range day.Points {
			if err := sensor.Push(p); err != nil {
				b.Fatal(err)
			}
		}
		if err := sensor.Close(); err != nil {
			b.Fatal(err)
		}
		server := transport.NewServer(&buf)
		if err := server.ReadAll(); err != nil {
			b.Fatal(err)
		}
		if len(server.Points) == 0 {
			b.Fatal("no symbols delivered")
		}
	}
}

// BenchmarkFleetIngest measures concurrent ingest through the aggregation
// service: M meters learn their tables, connect over real TCP on loopback
// and stream the first hour of a day at 1 Hz, all in parallel. The reported
// sym/s is end-to-end fleet throughput (generation + encoding + wire +
// sharded store), the trajectory metric for every future scaling PR.
func BenchmarkFleetIngest(b *testing.B) {
	for _, meters := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("meters=%d", meters), func(b *testing.B) {
			var symbols int64
			for i := 0; i < b.N; i++ {
				cfg := server.FleetConfig{
					Meters:        meters,
					Days:          1,
					SecondsPerDay: 3600,
					Window:        60,
					Seed:          1,
					DisableGaps:   true,
				}
				svc := server.New(server.Config{Shards: 16, ReservePoints: cfg.ExpectedPointsPerMeter()})
				addr, err := svc.Listen("127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				rep, err := server.RunFleet(addr.String(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				svc.AwaitSessions(int64(meters), 30*time.Second)
				svc.Drain()
				if errs := svc.SessionErrors(); len(errs) > 0 {
					b.Fatal(errs[0])
				}
				for _, m := range rep.Meters {
					if m.Err != nil {
						b.Fatal(m.Err)
					}
				}
				got := int64(svc.Store().TotalSymbols())
				if want := int64(meters * 3600 / 60); got != want {
					b.Fatalf("ingested %d symbols, want %d", got, want)
				}
				symbols += got
				svc.Close()
			}
			b.ReportMetric(float64(symbols)/b.Elapsed().Seconds(), "sym/s")
		})
	}
}

// benchSymbols returns n uniformly-spread symbols at the level of alphabet
// size k (one day of 15-minute data is n=96).
func benchSymbols(b *testing.B, n, k int) []symbolic.Symbol {
	b.Helper()
	a, err := symbolic.NewAlphabet(k)
	if err != nil {
		b.Fatal(err)
	}
	syms := make([]symbolic.Symbol, n)
	for i := range syms {
		syms[i] = symbolic.NewSymbol(i%k, a.Level())
	}
	return syms
}

// BenchmarkPack compares the word-at-a-time packing kernel (allocating Pack
// and buffer-reusing AppendPack) against the bit-at-a-time baseline it
// replaced (internal/benchref), on one day of symbols per op. The
// perf-trajectory claim for this codec is word ≥ 4x bitwise at level ≥ 4.
// Bodies live in internal/benchref so cmd/bench measures identical code.
func BenchmarkPack(b *testing.B) {
	for _, k := range []int{16, 256} {
		syms := benchSymbols(b, 96, k)
		name := fmt.Sprintf("k=%d", k)
		b.Run(name+"/word", func(b *testing.B) { benchref.BenchPackWord(b, syms) })
		b.Run(name+"/word-append", func(b *testing.B) { benchref.BenchPackAppend(b, syms) })
		b.Run(name+"/bitwise", func(b *testing.B) { benchref.BenchPackBitwise(b, syms) })
	}
}

// BenchmarkUnpack is the decode side of BenchmarkPack: word-at-a-time
// (allocating Unpack and buffer-reusing UnpackInto) versus the bit-at-a-time
// baseline.
func BenchmarkUnpack(b *testing.B) {
	for _, k := range []int{16, 256} {
		syms := benchSymbols(b, 96, k)
		data, err := symbolic.Pack(syms)
		if err != nil {
			b.Fatal(err)
		}
		name := fmt.Sprintf("k=%d", k)
		b.Run(name+"/word", func(b *testing.B) { benchref.BenchUnpackWord(b, data, len(syms)) })
		b.Run(name+"/word-into", func(b *testing.B) { benchref.BenchUnpackInto(b, data, len(syms)) })
		b.Run(name+"/bitwise", func(b *testing.B) { benchref.BenchUnpackBitwise(b, data, len(syms)) })
	}
}

// BenchmarkKernels measures the raw packed-symbol kernel family on every
// available dispatch path (scalar always; AVX2/NEON when the binary and CPU
// support them), at full SIMD stride over the shared 64K-symbol fixture.
// Bodies live in internal/benchref so cmd/bench (BENCH_8.json's kernel/*
// rows and their forced-scalar twins) measures identical code.
func BenchmarkKernels(b *testing.B) {
	bodies := benchref.KernelBenchmarks()
	prev := symbolic.KernelPath()
	defer func() {
		if err := symbolic.SetKernelPath(prev); err != nil {
			b.Fatal(err)
		}
	}()
	for _, path := range symbolic.KernelPaths() {
		if err := symbolic.SetKernelPath(path); err != nil {
			b.Fatal(err)
		}
		for _, name := range []string{"hist", "sum", "unpack", "pack"} {
			b.Run(path+"/"+name, bodies[name])
		}
	}
}

// BenchmarkQueryEngine measures the compressed-domain query engine against
// its decode-then-aggregate baseline over a fixture of 32 meters × 4 weeks
// of 15-minute symbols. The query side reads block summaries and runs LUT
// kernels on edge blocks through the bounded worker pool; the baseline reconstructs
// every stream and loops the floats. Bodies live in internal/benchref so
// cmd/bench (BENCH_4.json) measures identical code.
func BenchmarkQueryEngine(b *testing.B) {
	const meters, perMeter = benchref.QueryFixtureMeters, benchref.QueryFixturePoints
	st, err := benchref.MakeQueryStore(meters, perMeter)
	if err != nil {
		b.Fatal(err)
	}
	if err := benchref.SanityCheckQueryFixture(st, meters, perMeter); err != nil {
		b.Fatal(err)
	}
	total := meters * perMeter
	eng := query.New(st)
	wt0, wt1, wpts := benchref.QueryWindow()
	b.Run("fleet-sum", func(b *testing.B) { benchref.BenchQueryFleetSum(b, eng, total) })
	b.Run("fleet-hist", func(b *testing.B) { benchref.BenchQueryFleetHistogram(b, eng, total) })
	b.Run("meter-window", func(b *testing.B) {
		benchref.BenchQueryMeterWindow(b, eng, 1, wt0, wt1, wpts)
	})
	b.Run("baseline-fleet-sum", func(b *testing.B) { benchref.BenchBaselineFleetSum(b, st, total) })
	b.Run("baseline-fleet-hist", func(b *testing.B) { benchref.BenchBaselineFleetHistogram(b, st, 16, total) })
}

// BenchmarkMixedIngestQuery is the mixed-workload suite of the lock-free
// read path: fleet aggregates at increasing worker-pool bounds run against
// a store whose live tails are being mutated by background ingest the whole
// time. Queries read the RCU-published sealed indexes without shard locks,
// so on a multi-core box their throughput scales with the worker count
// instead of serializing against the writers; on a single-core box (like
// the container the committed BENCH_4.json was generated on — see its
// "cpus" field) extra workers only add scheduling overhead, so the sweep is
// meaningful where CI runs it, not there. Bodies live in internal/benchref
// so cmd/bench (BENCH_4.json) measures identical code.
func BenchmarkMixedIngestQuery(b *testing.B) {
	st, err := benchref.MakeQueryStore(benchref.QueryFixtureMeters, benchref.QueryFixturePoints)
	if err != nil {
		b.Fatal(err)
	}
	stop := benchref.StartBackgroundIngest(b, st, 4)
	defer stop()
	eng := query.New(st)
	total := benchref.QueryFixtureMeters * benchref.QueryFixturePoints
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("fleet-agg/workers=%d", workers), func(b *testing.B) {
			benchref.BenchMixedFleetAggregate(b, eng, workers, total)
		})
	}
}

// BenchmarkIngestUnderReaders measures Append latency (p50/p99 reported as
// metrics) on a hot meter, solo and with 4 concurrent readers running fleet
// aggregates plus full Snapshot reconstructions. The lock-free read path's
// contract is that slow readers never make an Append wait on a lock held
// across a scan — measured as an unchanged p50. The p99 additionally
// absorbs whatever scheduler preemption the reader goroutines cause, which
// on an undersubscribed (e.g. single-core) box can dominate it; compare
// p99s only across runs on the same hardware with cores to spare.
func BenchmarkIngestUnderReaders(b *testing.B) {
	b.Run("solo", func(b *testing.B) { benchref.BenchIngestLatency(b, 0) })
	b.Run("readers=4", func(b *testing.B) { benchref.BenchIngestLatency(b, 4) })
}

// BenchmarkNetQuery measures the remote query path: the fixture engine
// served over loopback TCP, queried through pkg/client on one reused
// connection — plus hot-meter Append latency with the slow readers moved
// behind the socket. Bodies live in internal/benchref so cmd/bench
// (BENCH_6.json) measures identical code.
func BenchmarkNetQuery(b *testing.B) {
	st, err := benchref.MakeQueryStore(benchref.QueryFixtureMeters, benchref.QueryFixturePoints)
	if err != nil {
		b.Fatal(err)
	}
	addr, stop, err := benchref.StartNetQuery(st)
	if err != nil {
		b.Fatal(err)
	}
	defer stop()
	total := benchref.QueryFixtureMeters * benchref.QueryFixturePoints
	wt0, wt1, wpts := benchref.QueryWindow()
	eng := query.New(st)
	b.Run("fleet-sum", func(b *testing.B) { benchref.BenchNetFleetSum(b, addr, total) })
	b.Run("meter-window", func(b *testing.B) { benchref.BenchNetMeterWindow(b, addr, 1, wt0, wt1, wpts) })
	b.Run("window-latency-wire", func(b *testing.B) { benchref.BenchNetWindowLatency(b, addr, 1, wt0, wt1, wpts) })
	b.Run("window-latency-inproc", func(b *testing.B) { benchref.BenchInprocWindowLatency(b, eng, 1, wt0, wt1, wpts) })
	b.Run("ingest-under-net-readers", func(b *testing.B) { benchref.BenchIngestLatencyNet(b, 4) })
}

// BenchmarkStoreAppend measures committing one decoded day-batch into the
// sharded packed block store — the per-batch cost behind fleet ingest.
// Capacity is reserved up front, so the measured path is pure validate +
// bit-pack + summary update with zero allocations.
func BenchmarkStoreAppend(b *testing.B) {
	_, table := benchSeries(b, 16)
	pts := make([]symbolic.SymbolPoint, 96)
	for i := range pts {
		pts[i] = symbolic.SymbolPoint{T: int64(i) * 900, S: table.Encode(float64(i * 11 % 4000))}
	}
	benchref.BenchStoreAppend(b, table, pts)
}

// BenchmarkPersistAppend is BenchmarkStoreAppend through the full durable
// path: WAL framing + write(2) + packed-store commit + seal-time segment
// spill (fsync off — the write(2)-before-ack durability floor).
func BenchmarkPersistAppend(b *testing.B) {
	benchref.BenchPersistAppend(b, storage.SyncOff)
}

// BenchmarkPersistIngestLatency reports per-Append p50/p99 through the WAL
// at each fsync mode.
func BenchmarkPersistIngestLatency(b *testing.B) {
	for _, mode := range []storage.SyncMode{storage.SyncOff, storage.SyncGroup, storage.SyncAlways} {
		b.Run("fsync="+mode.String(), func(b *testing.B) {
			benchref.BenchPersistIngestLatency(b, mode)
		})
	}
}

// BenchmarkRecovery measures storage.Open rebuilding the query fixture from
// each directory shape: finished segments (clean shutdown) vs pure WAL
// replay (crash).
func BenchmarkRecovery(b *testing.B) {
	b.Run("segments", func(b *testing.B) {
		benchref.BenchRecovery(b, benchref.QueryFixtureMeters, benchref.QueryFixturePoints, true)
	})
	b.Run("replay", func(b *testing.B) {
		benchref.BenchRecovery(b, benchref.QueryFixtureMeters, benchref.QueryFixturePoints, false)
	})
}

// BenchmarkColdQuery runs the compressed-domain queries over a store whose
// sealed payloads live in mmapped segment files — the cold-read path.
func BenchmarkColdQuery(b *testing.B) {
	eng, err := benchref.MakePersistStore(b.TempDir(), benchref.QueryFixtureMeters, benchref.QueryFixturePoints, storage.SyncOff)
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Flush(); err != nil {
		b.Fatal(err)
	}
	total := benchref.QueryFixtureMeters * benchref.QueryFixturePoints
	qe := query.New(eng.Store())
	b.Run("fleet-sum", func(b *testing.B) { benchref.BenchQueryFleetSum(b, qe, total) })
	wt0, wt1, wpts := benchref.QueryWindow()
	b.Run("meter-window", func(b *testing.B) { benchref.BenchQueryMeterWindow(b, qe, 1, wt0, wt1, wpts) })
}

// BenchmarkSAXEncode measures the SAX baseline on one day of hourly data.
func BenchmarkSAXEncode(b *testing.B) {
	gen := dataset.New(dataset.Config{Seed: 2, Houses: 1, Days: 1, DisableGaps: true})
	vals := gen.HouseDay(0, 0).Resample(3600).Values()
	enc, err := sax.NewEncoder(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(vals); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateDay measures synthesising one house-day at 1 Hz.
func BenchmarkGenerateDay(b *testing.B) {
	gen := dataset.New(dataset.Config{Seed: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.HouseDay(i%6, i%20)
	}
}

// BenchmarkRunningMedian measures the online median structure the periodic
// table-refresh path uses.
func BenchmarkRunningMedian(b *testing.B) {
	var rm stats.RunningMedian
	for i := 0; i < b.N; i++ {
		rm.Add(float64(i % 8192))
	}
	if rm.Count() != b.N {
		b.Fatal("count mismatch")
	}
}

// BenchmarkAblationPackedVsFixed compares the variable-length bit packing
// against naive one-byte-per-symbol storage (the DESIGN.md §5 codec
// ablation) by reporting bytes per day for each.
func BenchmarkAblationPackedVsFixed(b *testing.B) {
	day, table := benchSeries(b, 16)
	ss, err := symbolic.EncodeSeries(day, table, 900)
	if err != nil {
		b.Fatal(err)
	}
	syms := ss.Symbols()
	var packed int
	for i := 0; i < b.N; i++ {
		data, err := symbolic.Pack(syms)
		if err != nil {
			b.Fatal(err)
		}
		packed = len(data)
	}
	b.ReportMetric(float64(packed), "packedB")
	b.ReportMetric(float64(len(syms)), "byteB") // 1 byte per symbol baseline
}

// BenchmarkAblationResolutionConversion measures coarsening a k=16 day to
// k=4 versus re-encoding from raw — the §4 flexibility claim's cost side.
func BenchmarkAblationResolutionConversion(b *testing.B) {
	day, table := benchSeries(b, 16)
	ss, err := symbolic.EncodeSeries(day, table, 900)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("coarsen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ss.Coarsen(4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("re-encode", func(b *testing.B) {
		coarse, err := table.Coarsen(4)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := symbolic.EncodeSeries(day, coarse, 900); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationLearningWindow compares tables learned from one versus
// two days of history (DESIGN.md §5: the Fig. 4 convergence claim's
// practical consequence), reporting the downstream classification F1.
func BenchmarkAblationLearningWindow(b *testing.B) {
	for _, trainDays := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("days=%d", trainDays), func(b *testing.B) {
			p := experiments.NewPipeline(experiments.Config{
				Seed: 1, Houses: 6, Days: 12, TrainDays: trainDays,
			})
			var f1 float64
			for i := 0; i < b.N; i++ {
				res, err := p.Classify(experiments.Encoding{
					Method: symbolic.MethodMedian, Window: experiments.Window1h, K: 16,
				}, experiments.ModelNaiveBayes)
				if err != nil {
					b.Fatal(err)
				}
				f1 = res.F1
			}
			b.ReportMetric(f1*1000, "mF1")
		})
	}
}

// BenchmarkClusteringExtension runs the segmentation-as-clustering
// extension and reports symbolic purity.
func BenchmarkClusteringExtension(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	var purity float64
	for i := 0; i < b.N; i++ {
		rows, err := p.RunClustering(experiments.ClusterConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		purity = rows[1].Purity
	}
	b.ReportMetric(purity*1000, "mPurity")
}

// BenchmarkPrivacyExtension runs the event-detection attack study and
// reports the coarsest encoding's attack F1 (the privacy headline).
func BenchmarkPrivacyExtension(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	var f1 float64
	for i := 0; i < b.N; i++ {
		rows, err := p.RunPrivacy(experiments.PrivacyConfig{})
		if err != nil {
			b.Fatal(err)
		}
		f1 = rows[len(rows)-1].F1
	}
	b.ReportMetric(f1*1000, "mAttackF1")
}

// BenchmarkDriftExtension runs the static-vs-adaptive drift study and
// reports the adaptive MAE.
func BenchmarkDriftExtension(b *testing.B) {
	var mae float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDrift(experiments.DriftConfig{Seed: 1, Days: 30})
		if err != nil {
			b.Fatal(err)
		}
		mae = res.AdaptiveMAE
	}
	b.ReportMetric(mae, "W-MAE")
}

// sanity check that benchmark helpers build valid fixtures even when not
// running benches (go vet-level guard).
func TestBenchFixtures(t *testing.T) {
	gen := dataset.New(dataset.Config{Seed: 2, Houses: 1, Days: 1, DisableGaps: true})
	if gen.HouseDay(0, 0).Len() != timeseries.SecondsPerDay {
		t.Fatal("fixture day incomplete")
	}
	if fmt.Sprintf("%d", timeseries.SecondsPerDay) != "86400" {
		t.Fatal("constant drift")
	}
}
