package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"symmeter/internal/timeseries"
)

func TestDatagenWritesHouseCSV(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{
		"-out", dir, "-houses", "1", "-days", "1", "-window", "3600", "-no-gaps",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "house1.csv")
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Errorf("output does not mention %s:\n%s", path, out.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, err := timeseries.ReadCSV(path, f)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 24 { // one gap-free day at 1-hour resolution
		t.Fatalf("house1.csv has %d points, want 24", s.Len())
	}
}

func TestDatagenMains(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{
		"-out", dir, "-house", "1", "-days", "1", "-window", "3600", "-mains", "-no-gaps",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"house1_mains1.csv", "house1_mains2.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}

func TestDatagenBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-days", "x"}, &out); err == nil {
		t.Fatal("bad flag value should error")
	}
}
