// Command datagen writes the synthetic REDD-like dataset as CSV, one file
// per house (or per mains channel with -mains), for use outside this
// repository:
//
//	datagen -out ./data -days 7
//	datagen -out ./data -house 1 -mains
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"symmeter/internal/dataset"
	"symmeter/internal/timeseries"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		outDir = fs.String("out", "data", "output directory")
		seed   = fs.Int64("seed", 1, "dataset seed")
		houses = fs.Int("houses", 6, "number of houses")
		days   = fs.Int("days", 7, "days per house")
		house  = fs.Int("house", 0, "write only this house (1-based; 0 = all)")
		mains  = fs.Bool("mains", false, "write the two mains channels instead of the total")
		window = fs.Int64("window", 1, "resample window in seconds (1 = raw 1 Hz)")
		noGaps = fs.Bool("no-gaps", false, "disable missing-data simulation")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	gen := dataset.New(dataset.Config{
		Seed: *seed, Houses: *houses, Days: *days, DisableGaps: *noGaps,
	})
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	first, last := 0, gen.Houses()
	if *house > 0 {
		first, last = *house-1, *house
	}
	for h := first; h < last; h++ {
		if *mains {
			if err := writeMains(gen, h, *days, *window, *outDir, out); err != nil {
				return err
			}
			continue
		}
		s := gen.HouseResampled(h, 0, *days, maxInt64(*window, 1))
		if *window <= 1 {
			s = gen.House(h, 0, *days)
		}
		if err := writeSeries(s, filepath.Join(*outDir, fmt.Sprintf("house%d.csv", h+1)), out); err != nil {
			return err
		}
	}
	return nil
}

func writeMains(gen *dataset.Generator, h, days int, window int64, outDir string, out io.Writer) error {
	var m0all, m1all []timeseries.Point
	for d := 0; d < days; d++ {
		m0, m1 := gen.MainsDay(h, d)
		if window > 1 {
			m0, m1 = m0.Resample(window), m1.Resample(window)
		}
		m0all = append(m0all, m0.Points...)
		m1all = append(m1all, m1.Points...)
	}
	for i, pts := range [][]timeseries.Point{m0all, m1all} {
		s := timeseries.MustNew(fmt.Sprintf("house%d/mains%d", h+1, i+1), pts)
		path := filepath.Join(outDir, fmt.Sprintf("house%d_mains%d.csv", h+1, i+1))
		if err := writeSeries(s, path, out); err != nil {
			return err
		}
	}
	return nil
}

func writeSeries(s *timeseries.Series, path string, out io.Writer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.WriteCSV(f); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d points)\n", path, s.Len())
	return f.Close()
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
