package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunSmoke runs the full benchmark suite at a tiny benchtime and
// validates the BENCH_2.json structure.
func TestRunSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := run([]string{"-out", out, "-benchtime", "1ms"}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Schema != "symmeter-bench/2" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Results) != 7 {
		t.Fatalf("got %d results, want 7", len(rep.Results))
	}
	names := map[string]Result{}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 || r.SymbolsPerSec <= 0 {
			t.Fatalf("%s: non-positive measurement %+v", r.Name, r)
		}
		names[r.Name] = r
	}
	for _, want := range []string{"pack/word-append", "unpack/word-into", "store/append-batch96", "pack/bitwise", "unpack/bitwise"} {
		if _, ok := names[want]; !ok {
			t.Fatalf("missing benchmark %q", want)
		}
	}
	// The zero-allocation contract holds even at smoke benchtime.
	for _, name := range []string{"pack/word-append", "unpack/word-into"} {
		if a := names[name].AllocsPerOp; a != 0 {
			t.Fatalf("%s allocates %d times per op, want 0", name, a)
		}
	}
	for key, s := range rep.Speedups {
		if s <= 0 {
			t.Fatalf("speedup %q = %v", key, s)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Fatal("want error for unknown flag")
	}
	if err := run([]string{"-h"}, &buf); err != nil {
		t.Fatalf("-h should be nil, got %v", err)
	}
}
