package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"symmeter/internal/symbolic"
)

// TestRunSmoke runs the full benchmark suite at a tiny benchtime and
// validates the BENCH_8.json structure.
func TestRunSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := run([]string{"-out", out, "-benchtime", "1ms"}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Schema != "symmeter-bench/8" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	// 19 pre-existing rows + 4 kernel/* rows, + 4 forced-scalar twins when a
	// native dispatch path exists on this machine.
	wantResults := 23
	if symbolic.KernelPath() != "scalar" {
		wantResults = 27
	}
	if len(rep.Results) != wantResults {
		t.Fatalf("got %d results, want %d", len(rep.Results), wantResults)
	}
	// CPU metadata: dispatch path recorded and consistent with the process.
	if rep.CPU.GOARCH != runtime.GOARCH || rep.CPU.Dispatch != symbolic.KernelPath() {
		t.Fatalf("cpu section %+v inconsistent with process (dispatch %q)", rep.CPU, symbolic.KernelPath())
	}
	if len(rep.CPU.KernelPaths) == 0 || rep.CPU.KernelPaths[0] != "scalar" {
		t.Fatalf("cpu kernel paths = %v, want scalar first", rep.CPU.KernelPaths)
	}
	names := map[string]Result{}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 || r.SymbolsPerSec <= 0 {
			t.Fatalf("%s: non-positive measurement %+v", r.Name, r)
		}
		names[r.Name] = r
	}
	for _, want := range []string{
		"pack/word-append", "unpack/word-into", "store/append-batch96",
		"pack/bitwise", "unpack/bitwise",
		"kernel/hist", "kernel/sum", "kernel/unpack", "kernel/pack",
		"query/fleet-sum", "query/fleet-hist", "query/meter-window",
		"baseline/fleet-sum", "baseline/fleet-hist",
		"persist/append-batch96", "persist/recover-segments",
		"persist/recover-replay", "persist/fleet-sum-cold",
		"persist/meter-window-cold",
		"netquery/fleet-sum", "netquery/meter-window",
	} {
		if _, ok := names[want]; !ok {
			t.Fatalf("missing benchmark %q", want)
		}
	}
	// The zero-allocation contracts hold even at smoke benchtime.
	for _, name := range []string{"pack/word-append", "unpack/word-into", "kernel/hist", "kernel/sum", "query/meter-window", "persist/meter-window-cold"} {
		if a := names[name].AllocsPerOp; a != 0 {
			t.Fatalf("%s allocates %d times per op, want 0", name, a)
		}
	}
	for key, s := range rep.Speedups {
		if s <= 0 {
			t.Fatalf("speedup %q = %v", key, s)
		}
	}
	for _, key := range []string{"query_sum", "query_hist", "pack", "unpack"} {
		if _, ok := rep.Speedups[key]; !ok {
			t.Fatalf("missing speedup %q", key)
		}
	}
	// The memory claim is deterministic (pure accounting, no timing): the
	// packed store must beat 24 B/point ReconPoints by ≥ 10x even at smoke
	// settings.
	if rep.Memory.Reduction < 10 {
		t.Fatalf("memory reduction = %.1fx (%.2f B/point), want ≥ 10x",
			rep.Memory.Reduction, rep.Memory.PackedBytesPerPoint)
	}
	// The mixed ingest+query section must carry the full worker sweep and
	// latency percentiles (values are load-sensitive; presence and basic
	// sanity are the contract).
	if got := len(rep.Mixed.FleetQueryUnderIngest); got != 4 {
		t.Fatalf("mixed sweep has %d worker points, want 4", got)
	}
	for _, wr := range rep.Mixed.FleetQueryUnderIngest {
		if wr.Workers <= 0 || wr.QueriesPerSec <= 0 {
			t.Fatalf("bad mixed sweep point %+v", wr)
		}
	}
	if rep.Mixed.IngestP99SoloNs <= 0 || rep.Mixed.IngestP99ReadersNs <= 0 ||
		rep.Mixed.IngestP50SoloNs <= 0 || rep.Mixed.IngestP50ReadersNs <= 0 {
		t.Fatalf("mixed ingest latency percentiles missing: %+v", rep.Mixed)
	}
	// The persist section must carry every fsync mode's latency, the
	// in-memory ratio, and the fixture's disk/residency accounting.
	if rep.Persist.IngestP50WALOffNs <= 0 || rep.Persist.IngestP50WALGroupNs <= 0 ||
		rep.Persist.IngestP50WALAlwaysNs <= 0 || rep.Persist.WALOffOverMemP50 <= 0 {
		t.Fatalf("persist latency section incomplete: %+v", rep.Persist)
	}
	if rep.Persist.WALBytes <= 0 || rep.Persist.SegmentBytes <= 0 || rep.Persist.ResidentBytesPerPt <= 0 {
		t.Fatalf("persist disk/residency accounting incomplete: %+v", rep.Persist)
	}
	// Spilling sealed payloads must beat the resident store's footprint.
	if rep.Persist.ResidentBytesPerPt >= rep.Memory.PackedBytesPerPoint {
		t.Fatalf("spilled store resident %.2f B/pt ≥ in-memory %.2f B/pt",
			rep.Persist.ResidentBytesPerPt, rep.Memory.PackedBytesPerPoint)
	}
	// The netquery section must carry both sides of the wire-overhead ratio
	// and the ingest percentiles under wire readers (values are
	// load-sensitive; presence and basic sanity are the contract).
	if rep.NetQuery.WireWindowP50Ns <= 0 || rep.NetQuery.WireWindowP99Ns <= 0 ||
		rep.NetQuery.InprocWindowP50Ns <= 0 || rep.NetQuery.InprocWindowP99Ns <= 0 ||
		rep.NetQuery.WireOverInprocP50 <= 0 {
		t.Fatalf("netquery latency section incomplete: %+v", rep.NetQuery)
	}
	// A wire round trip can't be cheaper than the in-process aggregate it
	// wraps; the inverse would mean the two benches measure different work.
	if rep.NetQuery.WireWindowP50Ns < rep.NetQuery.InprocWindowP50Ns {
		t.Fatalf("wire p50 %.0f ns < in-process p50 %.0f ns",
			rep.NetQuery.WireWindowP50Ns, rep.NetQuery.InprocWindowP50Ns)
	}
	if rep.NetQuery.IngestP50NetReadersNs <= 0 || rep.NetQuery.IngestP99NetReadersNs <= 0 {
		t.Fatalf("netquery ingest latency percentiles missing: %+v", rep.NetQuery)
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Fatal("want error for unknown flag")
	}
	if err := run([]string{"-h"}, &buf); err != nil {
		t.Fatalf("-h should be nil, got %v", err)
	}
}

// TestProfileFlags exercises the pprof plumbing end to end: both profile
// files must exist and be non-empty after a smoke run.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.out"), filepath.Join(dir, "mem.out")
	var buf bytes.Buffer
	err := run([]string{
		"-out", filepath.Join(dir, "b.json"), "-benchtime", "1ms",
		"-cpuprofile", cpu, "-memprofile", mem,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}
