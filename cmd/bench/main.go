// Command bench runs the hot-path micro-benchmarks — symbol codec pack and
// unpack (word-at-a-time kernel vs the bit-at-a-time baseline kept in
// internal/benchref), sharded-store batch ingest, the compressed-domain
// query engine vs its decode-then-aggregate baseline, and the mixed
// ingest+query workload over the lock-free read path — and writes the
// results as JSON, so every PR's perf trajectory is recorded as an artifact
// instead of scrolling away in CI logs.
//
//	bench                         # writes BENCH_8.json
//	bench -out /tmp/b.json -benchtime 100ms
//	bench -cpuprofile cpu.out     # profile the query path
//
// The JSON carries ns/op, symbols/sec, B/op and allocs/op per benchmark,
// the speedup of each kernel over its baseline (pack/unpack floors at 4x;
// the compressed-domain query floor is 5x over decode-then-aggregate), the
// store's measured resident bytes per point against the 24-byte ReconPoint
// layout it replaced (floor: 10x reduction), a mixed section (fleet query
// throughput per worker-pool bound under live background ingest, ingest
// p50/p99 latency with and without concurrent slow readers), and — since
// schema 5 — a persist section: ingest latency through the write-ahead log
// per fsync mode (with the WAL-off/in-memory p50 ratio the 2x acceptance
// bound reads), recovery throughput from finished segments vs pure WAL
// replay, and cold queries over mmap-backed spilled blocks. Schema 6 adds a
// netquery section: the same aggregates asked through pkg/client over
// loopback TCP — wire vs in-process window latency (protocol overhead) and
// hot-meter ingest latency while net-query readers run. Schema 8 adds a cpu
// section (GOARCH, GOAMD64 level, available kernel dispatch paths and the
// one taken) and a kernel/* family: the raw packed-symbol kernels measured
// in isolation on the active SIMD path, each with a same-run forced-scalar
// twin (kernel/<name>-scalar) so the dispatch-path speedup is read off one
// artifact instead of compared across machines.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"testing"

	"symmeter/internal/benchref"
	"symmeter/internal/profiling"
	"symmeter/internal/query"
	"symmeter/internal/storage"
	"symmeter/internal/symbolic"
)

// Result is one benchmark's measurement.
type Result struct {
	Name          string  `json:"name"`
	NsPerOp       float64 `json:"ns_per_op"`
	SymbolsPerSec float64 `json:"symbols_per_sec"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
}

// MemoryStats is the measured storage cost of the packed block store.
type MemoryStats struct {
	// PackedBytesPerPoint is Store.MemoryFootprint over the query fixture:
	// payloads, histogram lanes, block metadata and arena slack.
	PackedBytesPerPoint float64 `json:"packed_bytes_per_point"`
	// ReconBytesPerPoint is the 24-byte ReconPoint the store used to hold.
	ReconBytesPerPoint float64 `json:"recon_bytes_per_point"`
	// Reduction is Recon/Packed (acceptance floor: ≥ 10).
	Reduction float64 `json:"reduction"`
}

// WorkerRate is one point of the fleet-query worker-scaling sweep.
type WorkerRate struct {
	Workers       int     `json:"workers"`
	QueriesPerSec float64 `json:"queries_per_sec"`
}

// MixedStats is the mixed ingest+query workload section: query throughput
// per worker bound while background writers keep mutating live tails, and
// hot-meter Append latency with and without concurrent slow readers. These
// are contention measurements, inherently machine- and load-sensitive, so
// they are recorded for trajectory inspection rather than gated.
type MixedStats struct {
	FleetQueryUnderIngest []WorkerRate `json:"fleet_query_under_ingest"`
	IngestP50SoloNs       float64      `json:"ingest_p50_solo_ns"`
	IngestP99SoloNs       float64      `json:"ingest_p99_solo_ns"`
	IngestP50ReadersNs    float64      `json:"ingest_p50_readers_ns"`
	IngestP99ReadersNs    float64      `json:"ingest_p99_readers_ns"`
}

// PersistStats is the durability section: WAL ingest latency per fsync
// mode, the WAL-off-to-in-memory p50 ratio (acceptance bound: ≤ 2), and the
// on-disk footprint of the persisted query fixture. Recovery and cold-query
// throughput live in Results as persist/* entries.
type PersistStats struct {
	IngestP50WALOffNs    float64 `json:"ingest_p50_wal_off_ns"`
	IngestP99WALOffNs    float64 `json:"ingest_p99_wal_off_ns"`
	IngestP50WALGroupNs  float64 `json:"ingest_p50_wal_group_ns"`
	IngestP99WALGroupNs  float64 `json:"ingest_p99_wal_group_ns"`
	IngestP50WALAlwaysNs float64 `json:"ingest_p50_wal_always_ns"`
	IngestP99WALAlwaysNs float64 `json:"ingest_p99_wal_always_ns"`
	WALOffOverMemP50     float64 `json:"wal_off_over_mem_p50"`
	WALBytes             int64   `json:"wal_bytes"`
	SegmentBytes         int64   `json:"segment_bytes"`
	ResidentBytesPerPt   float64 `json:"resident_bytes_per_point"`
}

// NetQueryStats is the remote-query section: single-meter window latency
// through pkg/client over loopback TCP vs the same aggregate in-process (the
// ratio is pure protocol + socket cost, both sides run the identical
// engine), and hot-meter Append latency while net-query readers run — the
// remote continuation of the lock-free-reads acceptance (the p50 must sit
// where the in-memory readers leave it). Latency contention numbers are
// recorded, not gated; the netquery/* throughputs in Results join the
// benchdiff gate once a baseline carrying them exists.
type NetQueryStats struct {
	WireWindowP50Ns       float64 `json:"wire_window_p50_ns"`
	WireWindowP99Ns       float64 `json:"wire_window_p99_ns"`
	InprocWindowP50Ns     float64 `json:"inproc_window_p50_ns"`
	InprocWindowP99Ns     float64 `json:"inproc_window_p99_ns"`
	WireOverInprocP50     float64 `json:"wire_over_inproc_p50"`
	IngestP50NetReadersNs float64 `json:"ingest_p50_net_readers_ns"`
	IngestP99NetReadersNs float64 `json:"ingest_p99_net_readers_ns"`
}

// CPUInfo records what silicon the kernel numbers were taken on and which
// dispatch tier produced them: two artifacts whose Dispatch fields differ
// are not comparable for kernel/* rows, and benchdiff skips that family
// when they (or the schemas) disagree.
type CPUInfo struct {
	GOARCH string `json:"goarch"`
	// GOAMD64 is the amd64 microarchitecture level the binary was compiled
	// for (v1–v4), empty on other architectures or when unrecorded.
	GOAMD64 string `json:"goamd64,omitempty"`
	// KernelPaths lists the dispatch paths this binary+CPU supports
	// ("scalar" always; "avx2"/"neon" when usable).
	KernelPaths []string `json:"kernel_paths"`
	// Dispatch is the path the kernel/* (non-scalar-twin) rows ran on.
	Dispatch string `json:"dispatch"`
}

// Report is the BENCH_8.json document.
type Report struct {
	Schema   string             `json:"schema"`
	Go       string             `json:"go"`
	GOOS     string             `json:"goos"`
	GOARCH   string             `json:"goarch"`
	CPUs     int                `json:"cpus"`
	CPU      CPUInfo            `json:"cpu"`
	Results  []Result           `json:"results"`
	Speedups map[string]float64 `json:"speedup_vs_baseline"`
	Memory   MemoryStats        `json:"memory"`
	Mixed    MixedStats         `json:"mixed"`
	Persist  PersistStats       `json:"persist"`
	NetQuery NetQueryStats      `json:"netquery"`
}

// goamd64Level reads the GOAMD64 build setting from the binary's build info.
func goamd64Level() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range info.Settings {
		if s.Key == "GOAMD64" {
			return s.Value
		}
	}
	return ""
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		outPath    = fs.String("out", "BENCH_8.json", "output JSON path")
		benchtime  = fs.String("benchtime", "", "per-benchmark measuring time, e.g. 100ms (default 1s)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	testing.Init()
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			return err
		}
	}
	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		return err
	}
	defer stopCPU()

	rep := Report{
		Schema: "symmeter-bench/8",
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		CPU: CPUInfo{
			GOARCH:      runtime.GOARCH,
			GOAMD64:     goamd64Level(),
			KernelPaths: symbolic.KernelPaths(),
			Dispatch:    symbolic.KernelPath(),
		},
		Speedups: map[string]float64{},
	}
	nsOf := map[string]float64{}
	record := func(name string, symbolsPerOp int, f func(b *testing.B)) {
		// Best of three: allocating benchmarks jitter ±15-20% with allocator
		// and GC state, and the CI regression gate compares these numbers at
		// a 20% threshold — the minimum is the standard noise reducer for
		// throughput gates (what benchstat's min column exists for).
		r := testing.Benchmark(f)
		for i := 0; i < 2; i++ {
			if again := testing.Benchmark(f); float64(again.T.Nanoseconds())/float64(again.N) < float64(r.T.Nanoseconds())/float64(r.N) {
				r = again
			}
		}
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		rep.Results = append(rep.Results, Result{
			Name:          name,
			NsPerOp:       ns,
			SymbolsPerSec: float64(symbolsPerOp) / ns * 1e9,
			BytesPerOp:    r.AllocedBytesPerOp(),
			AllocsPerOp:   r.AllocsPerOp(),
		})
		nsOf[name] = ns
		fmt.Fprintf(out, "%-28s %12.1f ns/op %14.0f sym/s %8d B/op %6d allocs/op\n",
			name, ns, float64(symbolsPerOp)/ns*1e9, r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	// One day of 15-minute symbols at k=16 (level 4), the paper's headline
	// configuration.
	const n, k, level = 96, 16, 4
	syms := make([]symbolic.Symbol, n)
	for i := range syms {
		syms[i] = symbolic.NewSymbol(i%k, level)
	}
	packed, err := symbolic.Pack(syms)
	if err != nil {
		return err
	}

	// The benchmark bodies are shared with bench_test.go via internal/benchref
	// so BENCH_4.json and `go test -bench` cannot measure different code.
	record("pack/word", n, func(b *testing.B) { benchref.BenchPackWord(b, syms) })
	record("pack/word-append", n, func(b *testing.B) { benchref.BenchPackAppend(b, syms) })
	record("pack/bitwise", n, func(b *testing.B) { benchref.BenchPackBitwise(b, syms) })
	record("unpack/word", n, func(b *testing.B) { benchref.BenchUnpackWord(b, packed, n) })
	record("unpack/word-into", n, func(b *testing.B) { benchref.BenchUnpackInto(b, packed, n) })
	record("unpack/bitwise", n, func(b *testing.B) { benchref.BenchUnpackBitwise(b, packed, n) })

	// Raw kernel family: the packed-symbol kernels measured in isolation at
	// full SIMD stride, each with a forced-scalar twin in the same run. The
	// fleet-query fixtures are summary-dominated (full-cover blocks never
	// scan payload bytes), so this is where the dispatch-path speedup shows.
	kernelNames := []string{"hist", "sum", "unpack", "pack"}
	kernelBodies := benchref.KernelBenchmarks()
	for _, kname := range kernelNames {
		record("kernel/"+kname, benchref.KernelFixtureSymbols, kernelBodies[kname])
	}
	if native := symbolic.KernelPath(); native != "scalar" {
		if err := symbolic.SetKernelPath("scalar"); err != nil {
			return err
		}
		for _, kname := range kernelNames {
			record("kernel/"+kname+"-scalar", benchref.KernelFixtureSymbols, kernelBodies[kname])
			rep.Speedups["kernel_"+kname] = nsOf["kernel/"+kname+"-scalar"] / nsOf["kernel/"+kname]
		}
		if err := symbolic.SetKernelPath(native); err != nil {
			return err
		}
		fmt.Fprintf(out, "kernel %s vs scalar: hist %.1fx, sum %.1fx, unpack %.1fx, pack %.1fx\n",
			native, rep.Speedups["kernel_hist"], rep.Speedups["kernel_sum"],
			rep.Speedups["kernel_unpack"], rep.Speedups["kernel_pack"])
	}

	table, err := benchref.StoreTable()
	if err != nil {
		return err
	}
	pts := make([]symbolic.SymbolPoint, n)
	for i := range pts {
		pts[i] = symbolic.SymbolPoint{T: int64(i) * 900, S: table.Encode(float64(i * 11 % 4000))}
	}
	record("store/append-batch96", n, func(b *testing.B) { benchref.BenchStoreAppend(b, table, pts) })

	// Compressed-domain query engine vs decode-then-aggregate, over a fixture
	// of 32 meters × 4 weeks of 15-minute symbols.
	const meters, perMeter = benchref.QueryFixtureMeters, benchref.QueryFixturePoints
	st, err := benchref.MakeQueryStore(meters, perMeter)
	if err != nil {
		return err
	}
	if err := benchref.SanityCheckQueryFixture(st, meters, perMeter); err != nil {
		return err
	}
	total := meters * perMeter
	eng := query.New(st)
	record("query/fleet-sum", total, func(b *testing.B) { benchref.BenchQueryFleetSum(b, eng, total) })
	record("query/fleet-hist", total, func(b *testing.B) { benchref.BenchQueryFleetHistogram(b, eng, total) })
	// A window cutting inside blocks on both ends: summaries in the middle,
	// per-byte LUT kernels at the edges.
	wt0, wt1, wpts := benchref.QueryWindow()
	record("query/meter-window", wpts, func(b *testing.B) {
		benchref.BenchQueryMeterWindow(b, eng, 1, wt0, wt1, wpts)
	})
	record("baseline/fleet-sum", total, func(b *testing.B) { benchref.BenchBaselineFleetSum(b, st, total) })
	record("baseline/fleet-hist", total, func(b *testing.B) { benchref.BenchBaselineFleetHistogram(b, st, k, total) })

	rep.Speedups["pack"] = nsOf["pack/bitwise"] / nsOf["pack/word-append"]
	rep.Speedups["pack_alloc"] = nsOf["pack/bitwise"] / nsOf["pack/word"]
	rep.Speedups["unpack"] = nsOf["unpack/bitwise"] / nsOf["unpack/word-into"]
	rep.Speedups["unpack_alloc"] = nsOf["unpack/bitwise"] / nsOf["unpack/word"]
	rep.Speedups["query_sum"] = nsOf["baseline/fleet-sum"] / nsOf["query/fleet-sum"]
	rep.Speedups["query_hist"] = nsOf["baseline/fleet-hist"] / nsOf["query/fleet-hist"]
	fmt.Fprintf(out, "speedup vs bitwise: pack %.1fx (alloc %.1fx), unpack %.1fx (alloc %.1fx)\n",
		rep.Speedups["pack"], rep.Speedups["pack_alloc"], rep.Speedups["unpack"], rep.Speedups["unpack_alloc"])
	fmt.Fprintf(out, "speedup vs decode-then-aggregate: sum %.1fx, histogram %.1fx\n",
		rep.Speedups["query_sum"], rep.Speedups["query_hist"])

	// Mixed ingest+query workload: not gated (contention measurements are
	// load-sensitive), recorded so the worker-scaling and ingest-latency
	// trajectories live in the artifact next to the kernel numbers. Each
	// sweep point gets a fresh store so worker counts see identical data.
	for _, workers := range []int{1, 2, 4, 8} {
		mst, err := benchref.MakeQueryStore(meters, perMeter)
		if err != nil {
			return err
		}
		r := testing.Benchmark(func(b *testing.B) {
			stop := benchref.StartBackgroundIngest(b, mst, 4)
			defer stop()
			benchref.BenchMixedFleetAggregate(b, query.New(mst), workers, total)
		})
		rate := r.Extra["queries/s"]
		rep.Mixed.FleetQueryUnderIngest = append(rep.Mixed.FleetQueryUnderIngest, WorkerRate{Workers: workers, QueriesPerSec: rate})
		fmt.Fprintf(out, "mixed/fleet-agg workers=%d %31.1f queries/s under live ingest\n", workers, rate)
	}
	// Latency percentiles get the same best-of-three treatment as the
	// throughput numbers: a single run's p50 swings with scheduler and CPU
	// state, and the WAL-off/in-memory ratio below divides two of them.
	bestLatency := func(f func(b *testing.B)) testing.BenchmarkResult {
		r := testing.Benchmark(f)
		for i := 0; i < 2; i++ {
			if again := testing.Benchmark(f); again.Extra["p50-ns"] < r.Extra["p50-ns"] {
				r = again
			}
		}
		return r
	}
	solo := bestLatency(func(b *testing.B) { benchref.BenchIngestLatency(b, 0) })
	withReaders := bestLatency(func(b *testing.B) { benchref.BenchIngestLatency(b, 4) })
	rep.Mixed.IngestP50SoloNs = solo.Extra["p50-ns"]
	rep.Mixed.IngestP99SoloNs = solo.Extra["p99-ns"]
	rep.Mixed.IngestP50ReadersNs = withReaders.Extra["p50-ns"]
	rep.Mixed.IngestP99ReadersNs = withReaders.Extra["p99-ns"]
	fmt.Fprintf(out, "mixed/ingest-latency solo p50 %.0f ns, p99 %.0f ns; under 4 readers p50 %.0f ns, p99 %.0f ns\n",
		rep.Mixed.IngestP50SoloNs, rep.Mixed.IngestP99SoloNs, rep.Mixed.IngestP50ReadersNs, rep.Mixed.IngestP99ReadersNs)

	// Persistence: the same workloads through the WAL + segment engine.
	// Ingest latency per fsync mode (the WAL-off p50 is the acceptance-gated
	// one: ≤ 2x the same-run in-memory solo p50), recovery throughput from
	// both directory shapes, and cold queries over the spilled fixture.
	record("persist/append-batch96", n, func(b *testing.B) { benchref.BenchPersistAppend(b, storage.SyncOff) })
	for _, m := range []struct {
		mode storage.SyncMode
		p50  *float64
		p99  *float64
	}{
		{storage.SyncOff, &rep.Persist.IngestP50WALOffNs, &rep.Persist.IngestP99WALOffNs},
		{storage.SyncGroup, &rep.Persist.IngestP50WALGroupNs, &rep.Persist.IngestP99WALGroupNs},
		{storage.SyncAlways, &rep.Persist.IngestP50WALAlwaysNs, &rep.Persist.IngestP99WALAlwaysNs},
	} {
		r := bestLatency(func(b *testing.B) { benchref.BenchPersistIngestLatency(b, m.mode) })
		*m.p50, *m.p99 = r.Extra["p50-ns"], r.Extra["p99-ns"]
		fmt.Fprintf(out, "persist/ingest-latency fsync=%-6s %17.0f p50-ns %12.0f p99-ns\n", m.mode, *m.p50, *m.p99)
	}
	if memP50 := rep.Mixed.IngestP50SoloNs; memP50 > 0 {
		rep.Persist.WALOffOverMemP50 = rep.Persist.IngestP50WALOffNs / memP50
		fmt.Fprintf(out, "persist/ingest p50 with WAL (fsync=off) is %.2fx the in-memory p50 (bound: 2x)\n",
			rep.Persist.WALOffOverMemP50)
	}
	record("persist/recover-segments", total, func(b *testing.B) {
		benchref.BenchRecovery(b, meters, perMeter, true)
	})
	record("persist/recover-replay", total, func(b *testing.B) {
		benchref.BenchRecovery(b, meters, perMeter, false)
	})
	persistDir, err := os.MkdirTemp("", "symmeter-bench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(persistDir)
	peng, err := benchref.MakePersistStore(persistDir, meters, perMeter, storage.SyncOff)
	if err != nil {
		return err
	}
	defer peng.Close()
	// Flush first: segments are footed and truncated to their real length,
	// so the cold queries below run over finished segments and DiskUsage
	// reports actual bytes instead of sparse preallocation.
	if err := peng.Flush(); err != nil {
		return err
	}
	if err := benchref.SanityCheckQueryFixture(peng.Store(), meters, perMeter); err != nil {
		return err
	}
	ceng := query.New(peng.Store())
	record("persist/fleet-sum-cold", total, func(b *testing.B) { benchref.BenchQueryFleetSum(b, ceng, total) })
	record("persist/meter-window-cold", wpts, func(b *testing.B) {
		benchref.BenchQueryMeterWindow(b, ceng, 1, wt0, wt1, wpts)
	})
	rep.Persist.WALBytes, rep.Persist.SegmentBytes, err = peng.DiskUsage()
	if err != nil {
		return err
	}
	pBytes, pPoints := peng.Store().MemoryFootprint()
	rep.Persist.ResidentBytesPerPt = float64(pBytes) / float64(pPoints)
	fmt.Fprintf(out, "persist: %.2f B/point resident with spilled payloads; on disk %d WAL + %d segment bytes for %d points\n",
		rep.Persist.ResidentBytesPerPt, rep.Persist.WALBytes, rep.Persist.SegmentBytes, pPoints)

	// Remote query: the fixture engine served over loopback TCP, queried
	// through pkg/client on one reused connection. Throughputs land in
	// Results (netquery/*); the wire-vs-in-process window latency and the
	// ingest latency under wire readers land in the NetQuery section.
	netAddr, netStop, err := benchref.StartNetQuery(st)
	if err != nil {
		return err
	}
	record("netquery/fleet-sum", total, func(b *testing.B) { benchref.BenchNetFleetSum(b, netAddr, total) })
	record("netquery/meter-window", wpts, func(b *testing.B) {
		benchref.BenchNetMeterWindow(b, netAddr, 1, wt0, wt1, wpts)
	})
	wire := bestLatency(func(b *testing.B) { benchref.BenchNetWindowLatency(b, netAddr, 1, wt0, wt1, wpts) })
	inproc := bestLatency(func(b *testing.B) { benchref.BenchInprocWindowLatency(b, eng, 1, wt0, wt1, wpts) })
	netStop()
	rep.NetQuery.WireWindowP50Ns = wire.Extra["p50-ns"]
	rep.NetQuery.WireWindowP99Ns = wire.Extra["p99-ns"]
	rep.NetQuery.InprocWindowP50Ns = inproc.Extra["p50-ns"]
	rep.NetQuery.InprocWindowP99Ns = inproc.Extra["p99-ns"]
	if rep.NetQuery.InprocWindowP50Ns > 0 {
		rep.NetQuery.WireOverInprocP50 = rep.NetQuery.WireWindowP50Ns / rep.NetQuery.InprocWindowP50Ns
	}
	fmt.Fprintf(out, "netquery/meter-window latency wire p50 %.0f ns, p99 %.0f ns; in-process p50 %.0f ns, p99 %.0f ns (%.1fx over in-process)\n",
		rep.NetQuery.WireWindowP50Ns, rep.NetQuery.WireWindowP99Ns,
		rep.NetQuery.InprocWindowP50Ns, rep.NetQuery.InprocWindowP99Ns, rep.NetQuery.WireOverInprocP50)
	netReaders := bestLatency(func(b *testing.B) { benchref.BenchIngestLatencyNet(b, 4) })
	rep.NetQuery.IngestP50NetReadersNs = netReaders.Extra["p50-ns"]
	rep.NetQuery.IngestP99NetReadersNs = netReaders.Extra["p99-ns"]
	fmt.Fprintf(out, "netquery/ingest-latency under 4 wire readers p50 %.0f ns, p99 %.0f ns (solo p50 %.0f ns)\n",
		rep.NetQuery.IngestP50NetReadersNs, rep.NetQuery.IngestP99NetReadersNs, rep.Mixed.IngestP50SoloNs)

	bytes, points := st.MemoryFootprint()
	rep.Memory = MemoryStats{
		PackedBytesPerPoint: float64(bytes) / float64(points),
		ReconBytesPerPoint:  24,
	}
	rep.Memory.Reduction = rep.Memory.ReconBytesPerPoint / rep.Memory.PackedBytesPerPoint
	fmt.Fprintf(out, "memory: %.2f B/point packed vs %.0f B/point ReconPoint (%.1fx reduction)\n",
		rep.Memory.PackedBytesPerPoint, rep.Memory.ReconBytesPerPoint, rep.Memory.Reduction)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d benchmarks)\n", *outPath, len(rep.Results))

	return profiling.WriteHeap(*memprofile)
}
