// Command bench runs the hot-path micro-benchmarks — symbol codec pack and
// unpack (word-at-a-time kernel vs the bit-at-a-time baseline kept in
// internal/benchref) and sharded-store batch ingest — and writes the
// results as JSON, so every PR's perf trajectory is recorded as an
// artifact instead of scrolling away in CI logs.
//
//	bench                         # writes BENCH_2.json
//	bench -out /tmp/b.json -benchtime 100ms
//
// The JSON carries ns/op, symbols/sec, B/op and allocs/op per benchmark
// plus the speedup of each word-at-a-time kernel over its bit-at-a-time
// baseline (the acceptance floor for the codec rewrite is 4x at level 4).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"symmeter/internal/benchref"
	"symmeter/internal/symbolic"
)

// Result is one benchmark's measurement.
type Result struct {
	Name          string  `json:"name"`
	NsPerOp       float64 `json:"ns_per_op"`
	SymbolsPerSec float64 `json:"symbols_per_sec"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
}

// Report is the BENCH_2.json document.
type Report struct {
	Schema   string             `json:"schema"`
	Go       string             `json:"go"`
	GOOS     string             `json:"goos"`
	GOARCH   string             `json:"goarch"`
	CPUs     int                `json:"cpus"`
	Results  []Result           `json:"results"`
	Speedups map[string]float64 `json:"speedup_vs_bitwise"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		outPath   = fs.String("out", "BENCH_2.json", "output JSON path")
		benchtime = fs.String("benchtime", "", "per-benchmark measuring time, e.g. 100ms (default 1s)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	testing.Init()
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			return err
		}
	}

	rep := Report{
		Schema:   "symmeter-bench/2",
		Go:       runtime.Version(),
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
		CPUs:     runtime.NumCPU(),
		Speedups: map[string]float64{},
	}
	nsOf := map[string]float64{}
	record := func(name string, symbolsPerOp int, f func(b *testing.B)) {
		r := testing.Benchmark(f)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		rep.Results = append(rep.Results, Result{
			Name:          name,
			NsPerOp:       ns,
			SymbolsPerSec: float64(symbolsPerOp) / ns * 1e9,
			BytesPerOp:    r.AllocedBytesPerOp(),
			AllocsPerOp:   r.AllocsPerOp(),
		})
		nsOf[name] = ns
		fmt.Fprintf(out, "%-28s %12.1f ns/op %14.0f sym/s %8d B/op %6d allocs/op\n",
			name, ns, float64(symbolsPerOp)/ns*1e9, r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	// One day of 15-minute symbols at k=16 (level 4), the paper's headline
	// configuration.
	const n, k, level = 96, 16, 4
	syms := make([]symbolic.Symbol, n)
	for i := range syms {
		syms[i] = symbolic.NewSymbol(i%k, level)
	}
	packed, err := symbolic.Pack(syms)
	if err != nil {
		return err
	}

	// The benchmark bodies are shared with bench_test.go via internal/benchref
	// so BENCH_2.json and `go test -bench` cannot measure different code.
	record("pack/word", n, func(b *testing.B) { benchref.BenchPackWord(b, syms) })
	record("pack/word-append", n, func(b *testing.B) { benchref.BenchPackAppend(b, syms) })
	record("pack/bitwise", n, func(b *testing.B) { benchref.BenchPackBitwise(b, syms) })
	record("unpack/word", n, func(b *testing.B) { benchref.BenchUnpackWord(b, packed, n) })
	record("unpack/word-into", n, func(b *testing.B) { benchref.BenchUnpackInto(b, packed, n) })
	record("unpack/bitwise", n, func(b *testing.B) { benchref.BenchUnpackBitwise(b, packed, n) })

	table, err := storeTable()
	if err != nil {
		return err
	}
	pts := make([]symbolic.SymbolPoint, n)
	for i := range pts {
		pts[i] = symbolic.SymbolPoint{T: int64(i) * 900, S: table.Encode(float64(i * 11 % 4000))}
	}
	record("store/append-batch96", n, func(b *testing.B) { benchref.BenchStoreAppend(b, table, pts) })

	rep.Speedups["pack"] = nsOf["pack/bitwise"] / nsOf["pack/word-append"]
	rep.Speedups["pack_alloc"] = nsOf["pack/bitwise"] / nsOf["pack/word"]
	rep.Speedups["unpack"] = nsOf["unpack/bitwise"] / nsOf["unpack/word-into"]
	rep.Speedups["unpack_alloc"] = nsOf["unpack/bitwise"] / nsOf["unpack/word"]
	fmt.Fprintf(out, "speedup vs bitwise: pack %.1fx (alloc %.1fx), unpack %.1fx (alloc %.1fx)\n",
		rep.Speedups["pack"], rep.Speedups["pack_alloc"], rep.Speedups["unpack"], rep.Speedups["unpack_alloc"])

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d benchmarks)\n", *outPath, len(rep.Results))
	return nil
}

// storeTable learns a small k=16 table for the store-ingest benchmark.
func storeTable() (*symbolic.Table, error) {
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = float64(i * 7919 % 4000)
	}
	return symbolic.Learn(symbolic.MethodMedian, vals, 16)
}
