// Command experiments regenerates every table and figure of the paper's
// evaluation (§3) on the synthetic REDD-like dataset:
//
//	experiments -run fig5          # Naive Bayes F-measure sweep (Fig. 5)
//	experiments -run table1        # the full Table 1 grid
//	experiments -run all           # everything
//
// See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for recorded
// output and paper-vs-measured commentary.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"symmeter/internal/experiments"
	"symmeter/internal/symbolic"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run regenerates the requested artifacts; figures print to stdout.
func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		runArg = fs.String("run", "all", "which artifact to regenerate: fig1..fig9|table1|compression|drift|clustering|privacy|ablation|all (comma-separated list accepted)")
		seed   = fs.Int64("seed", 1, "dataset seed")
		houses = fs.Int("houses", 6, "number of houses")
		days   = fs.Int("days", 24, "days per house")
		quick  = fs.Bool("quick", false, "smaller dataset and no raw-1sec row (for smoke runs)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	cfg := experiments.Config{Seed: *seed, Houses: *houses, Days: *days}
	if *quick {
		cfg.Days = 10
	}
	p := experiments.NewPipeline(cfg)

	runners := map[string]func(*experiments.Pipeline, bool) error{
		"fig1":        runFig1,
		"fig2":        runFig2,
		"fig3":        runFig3,
		"fig4":        runFig4,
		"fig5":        runFig5,
		"fig6":        runFig6,
		"fig7":        runFig7,
		"fig8":        runFig8,
		"fig9":        runFig9,
		"table1":      runTable1,
		"compression": runCompression,
		"drift":       runDrift,
		"clustering":  runClustering,
		"privacy":     runPrivacy,
		"ablation":    runAblation,
	}
	names := strings.Split(*runArg, ",")
	if *runArg == "all" {
		names = []string{"fig1", "fig2", "fig3", "fig4", "compression",
			"fig5", "fig6", "fig7", "fig8", "fig9", "drift",
			"clustering", "privacy", "ablation", "table1"}
	}
	for _, name := range names {
		fn, ok := runners[name]
		if !ok {
			known := make([]string, 0, len(runners))
			for k := range runners {
				known = append(known, k)
			}
			sort.Strings(known)
			return fmt.Errorf("unknown artifact %q; known: %s", name, strings.Join(known, " "))
		}
		if err := fn(p, *quick); err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
	}
	return nil
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func runFig1(p *experiments.Pipeline, _ bool) error {
	header("Fig. 1 — variable-length symbols by recursive range division (house 1, uniform)")
	rows, err := p.Fig1SymbolConstruction(0)
	if err != nil {
		return err
	}
	for level := 1; level <= 3; level++ {
		fmt.Printf("level %d:\n", level)
		for _, r := range rows[level] {
			refine := ""
			if len(r.ParentOf) == 2 {
				refine = fmt.Sprintf("  -> refines to %s, %s", r.ParentOf[0], r.ParentOf[1])
			}
			fmt.Printf("  %-5s (%8.1f, %8.1f] W%s\n", r.Symbol, r.Lo, r.Hi, refine)
		}
	}
	return nil
}

func runFig2(p *experiments.Pipeline, _ bool) error {
	header("Fig. 2 — distribution of power levels, house 1, 100 W bins")
	h, err := p.Fig2Histogram(0, 3)
	if err != nil {
		return err
	}
	_, err = h.WriteTo(os.Stdout)
	fmt.Printf("mode bin: %.0f W; skew: mass concentrates at low power (log-normal-like)\n", h.Mode())
	return err
}

func runFig3(p *experiments.Pipeline, _ bool) error {
	header("Fig. 3 — what per-series normalisation destroys")
	saxRes, symRes, err := experiments.Fig3Compare()
	if err != nil {
		return err
	}
	fmt.Println("SAX (z-normalised) words:")
	for _, n := range []string{"A", "B", "C", "D"} {
		fmt.Printf("  %s: %-10s nearest: %s\n", n, saxRes.Words[n], saxRes.NearestTo[n])
	}
	fmt.Println("symmeter (absolute, pooled uniform table) words:")
	for _, n := range []string{"A", "B", "C", "D"} {
		fmt.Printf("  %s: %-28s nearest: %s\n", n, symRes.Words[n], symRes.NearestTo[n])
	}
	fmt.Println("normalisation pairs big A with small C; absolute encoding keeps A with B.")
	return nil
}

func runFig4(p *experiments.Pipeline, _ bool) error {
	header("Fig. 4 — accumulative statistics, house 1, three days")
	points, err := p.Fig4AccumulativeStats(0, 3, 10000)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %10s %10s %14s\n", "seconds", "mean", "median", "distinctmedian")
	for _, pt := range points {
		fmt.Printf("%10d %10.1f %10.1f %14.1f\n", pt.Seconds, pt.Mean, pt.Median, pt.DistinctMedian)
	}
	return nil
}

// runClassFigure renders a Fig. 5/6/7-style sweep for one model.
func runClassFigure(p *experiments.Pipeline, model experiments.ModelName, global bool) error {
	fmt.Printf("%-26s %10s %12s %10s\n", "encoding", "F-measure", "time", "instances")
	for _, enc := range experiments.EncodingGrid(global) {
		res, err := p.Classify(enc, model)
		if err != nil {
			return err
		}
		fmt.Printf("%-26s %10.2f %12s %10d\n", enc, res.F1, res.ProcTime.Round(100_000), res.Instances)
	}
	for _, enc := range experiments.RawEncodings() {
		res, err := p.Classify(enc, model)
		if err != nil {
			return err
		}
		fmt.Printf("%-26s %10.2f %12s %10d\n", enc, res.F1, res.ProcTime.Round(100_000), res.Instances)
	}
	return nil
}

func runFig5(p *experiments.Pipeline, _ bool) error {
	header("Fig. 5 — Naive Bayes over symbolic and raw data")
	return runClassFigure(p, experiments.ModelNaiveBayes, false)
}

func runFig6(p *experiments.Pipeline, _ bool) error {
	header("Fig. 6 — Random Forest over symbolic and raw data")
	return runClassFigure(p, experiments.ModelRandomForest, false)
}

func runFig7(p *experiments.Pipeline, _ bool) error {
	header("Fig. 7 — Random Forest with a single (global) lookup table")
	return runClassFigure(p, experiments.ModelRandomForest, true)
}

func runForecastFigure(p *experiments.Pipeline, model experiments.ModelName) error {
	fmt.Printf("%-15s", "series")
	for h := 0; h < p.Config().Houses; h++ {
		fmt.Printf(" %9s", fmt.Sprintf("house %d", h+1))
	}
	fmt.Println(" (MAE, W; '-' = skipped)")
	for _, m := range experiments.ForecastMethods() {
		label := m.String()
		if m == symbolic.MethodNone {
			label = "raw(SVR)"
		}
		results, err := p.ForecastAll(experiments.ForecastConfig{Method: m, Model: model})
		if err != nil {
			return err
		}
		fmt.Printf("%-15s", label)
		for _, r := range results {
			if r.Skipped {
				fmt.Printf(" %9s", "-")
			} else {
				fmt.Printf(" %9.1f", r.MAE)
			}
		}
		fmt.Println()
	}
	// Extra baselines from the load-forecasting literature the paper cites.
	arRow := make([]experiments.ForecastResult, 0, p.Config().Houses)
	naiveRow := make([]experiments.ForecastResult, 0, p.Config().Houses)
	for h := 0; h < p.Config().Houses; h++ {
		a, n, err := p.ForecastARBaseline(h, experiments.ForecastConfig{})
		if err != nil {
			return err
		}
		arRow = append(arRow, a)
		naiveRow = append(naiveRow, n)
	}
	for _, row := range []struct {
		label   string
		results []experiments.ForecastResult
	}{{"AR(24)", arRow}, {"seasonal-naive", naiveRow}} {
		fmt.Printf("%-15s", row.label)
		for _, r := range row.results {
			if r.Skipped {
				fmt.Printf(" %9s", "-")
			} else {
				fmt.Printf(" %9.1f", r.MAE)
			}
		}
		fmt.Println()
	}
	return nil
}

func runFig8(p *experiments.Pipeline, _ bool) error {
	header("Fig. 8 — forecasting MAE, Naive Bayes symbols vs raw SVR")
	return runForecastFigure(p, experiments.ModelNaiveBayes)
}

func runFig9(p *experiments.Pipeline, _ bool) error {
	header("Fig. 9 — forecasting MAE, Random Forest symbols vs raw SVR")
	return runForecastFigure(p, experiments.ModelRandomForest)
}

func runTable1(p *experiments.Pipeline, quick bool) error {
	header("Table 1 — F-measure, all methods × aggregations × alphabets × classifiers")
	fmt.Printf("%-26s", "encoding")
	for _, m := range experiments.AllModels {
		fmt.Printf(" %13s", m)
	}
	fmt.Println()
	row := func(enc experiments.Encoding, skip map[experiments.ModelName]bool) error {
		fmt.Printf("%-26s", enc)
		for _, m := range experiments.AllModels {
			if skip[m] {
				fmt.Printf(" %13s", "-*")
				continue
			}
			res, err := p.Classify(enc, m)
			if err != nil {
				return err
			}
			fmt.Printf(" %13.2f", res.F1)
		}
		fmt.Println()
		return nil
	}
	// Per-house tables, then the "+" (global) variants, like the paper's
	// column blocks; we render them as row blocks for terminal width.
	for _, enc := range experiments.EncodingGrid(false) {
		if err := row(enc, nil); err != nil {
			return err
		}
	}
	for _, enc := range experiments.EncodingGrid(true) {
		if err := row(enc, nil); err != nil {
			return err
		}
	}
	for _, enc := range experiments.RawEncodings() {
		if err := row(enc, nil); err != nil {
			return err
		}
	}
	if !quick {
		// The paper's "raw 1sec" row; Logistic is skipped there too ("this
		// values is not computed due to Java heap space issues").
		enc := experiments.Encoding{Method: symbolic.MethodNone, Window: experiments.WindowRaw1s}
		if err := row(enc, map[experiments.ModelName]bool{experiments.ModelLogistic: true}); err != nil {
			return err
		}
	}
	return nil
}

func runDrift(p *experiments.Pipeline, quick bool) error {
	header("§4 extension — seasonal drift: static vs adaptive lookup table")
	cfg := experiments.DriftConfig{Seed: p.Config().Seed}
	if quick {
		cfg.Days = 30
	}
	res, err := experiments.RunDrift(cfg)
	if err != nil {
		return err
	}
	return experiments.WriteDrift(os.Stdout, res)
}

func runClustering(p *experiments.Pipeline, _ bool) error {
	header("extension — customer segmentation as clustering (shared global table)")
	rows, err := p.RunClustering(experiments.ClusterConfig{Seed: p.Config().Seed})
	if err != nil {
		return err
	}
	return experiments.WriteClustering(os.Stdout, rows)
}

func runPrivacy(p *experiments.Pipeline, _ bool) error {
	header("extension — privacy: appliance-event detection attack vs encoding")
	rows, err := p.RunPrivacy(experiments.PrivacyConfig{Seed: p.Config().Seed})
	if err != nil {
		return err
	}
	return experiments.WritePrivacy(os.Stdout, rows)
}

func runAblation(p *experiments.Pipeline, quick bool) error {
	header("ablations — separator learning window; quantiser comparison (incl. Lloyd-Max)")
	days := p.Config().Days
	if quick {
		days = 8
	}
	lw, err := experiments.RunLearningWindow(p.Config().Seed, p.Config().Houses, days, []int{1, 2, 4})
	if err != nil {
		return err
	}
	qr, err := p.RunQuantizerComparison(0, []int{4, 16})
	if err != nil {
		return err
	}
	return experiments.WriteAblation(os.Stdout, lw, qr)
}

func runCompression(_ *experiments.Pipeline, _ bool) error {
	header("§2.3 — compression ratios over one day of 1 Hz data")
	rows, err := experiments.CompressionTable()
	if err != nil {
		return err
	}
	return experiments.WriteCompressionTable(os.Stdout, rows)
}
