package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed (the figure runners write to stdout directly).
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	runErr := fn()
	w.Close()
	out := <-done
	if runErr != nil {
		t.Fatalf("run: %v\n%s", runErr, out)
	}
	return out
}

func TestExperimentsFig1Smoke(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-run", "fig1", "-houses", "1", "-days", "3"})
	})
	if !strings.Contains(out, "Fig. 1") {
		t.Errorf("missing figure header:\n%s", out)
	}
	for _, level := range []string{"level 1:", "level 2:", "level 3:"} {
		if !strings.Contains(out, level) {
			t.Errorf("missing %q in fig1 output:\n%s", level, out)
		}
	}
}

func TestExperimentsUnknownArtifact(t *testing.T) {
	if err := run([]string{"-run", "fig99"}); err == nil {
		t.Fatal("unknown artifact should error")
	}
	if err := run([]string{"-days", "x"}); err == nil {
		t.Fatal("bad flag value should error")
	}
}
