// Command symbolize converts a CSV time series ("timestamp,value" rows)
// into its symbolic representation: it learns a lookup table from a leading
// portion of the data, streams the rest through the online encoder, and
// prints symbols (or packs them into a binary file):
//
//	symbolize -in house1.csv -method median -k 16 -window 900
//	symbolize -in house1.csv -k 8 -pack symbols.bin -table table.bin
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"symmeter/internal/symbolic"
	"symmeter/internal/timeseries"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "symbolize:", err)
		os.Exit(1)
	}
}

// run symbolizes one CSV file: symbols go to out, diagnostics to diag.
func run(args []string, out, diag io.Writer) error {
	fs := flag.NewFlagSet("symbolize", flag.ContinueOnError)
	var (
		in        = fs.String("in", "", "input CSV path (required)")
		method    = fs.String("method", "median", "separator method: uniform|median|distinctmedian")
		k         = fs.Int("k", 16, "alphabet size (power of two)")
		window    = fs.Int64("window", 900, "vertical aggregation window in seconds (0 = none)")
		trainFrac = fs.Float64("train", 0.25, "fraction of the series used to learn the lookup table")
		packPath  = fs.String("pack", "", "write bit-packed symbols to this file instead of stdout")
		tablePath = fs.String("table", "", "write the serialised lookup table to this file")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	series, err := timeseries.ReadCSV(*in, f)
	f.Close()
	if err != nil {
		return err
	}
	if series.Empty() {
		return fmt.Errorf("%s: no data", *in)
	}

	m, err := symbolic.ParseMethod(*method)
	if err != nil {
		return err
	}
	if *trainFrac <= 0 || *trainFrac >= 1 {
		return fmt.Errorf("train fraction %v must be in (0,1)", *trainFrac)
	}
	split := int(float64(series.Len()) * *trainFrac)
	if split < 1 {
		split = 1
	}
	var builder symbolic.TableBuilder
	builder.PushSeries(&timeseries.Series{Name: "train", Points: series.Points[:split]})
	table, err := builder.Build(m, *k)
	if err != nil {
		return err
	}
	rest := &timeseries.Series{Name: series.Name, Points: series.Points[split:]}
	ss, err := symbolic.EncodeSeries(rest, table, *window)
	if err != nil {
		return err
	}

	fmt.Fprintf(diag, "table: %s\n", table)
	fmt.Fprintf(diag, "encoded %d measurements into %d symbols\n", rest.Len(), ss.Len())

	if *tablePath != "" {
		if err := os.WriteFile(*tablePath, symbolic.MarshalTable(table), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(diag, "wrote table to %s (%d bytes)\n", *tablePath, symbolic.TableWireSize(*k))
	}
	if *packPath != "" {
		data, err := symbolic.Pack(ss.Symbols())
		if err != nil {
			return err
		}
		if err := os.WriteFile(*packPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(diag, "wrote %d packed bytes to %s (raw would be %d bytes)\n",
			len(data), *packPath, symbolic.RawSize(rest.Len()))
		return nil
	}
	for _, p := range ss.Points {
		fmt.Fprintf(out, "%d %s\n", p.T, p.S)
	}
	return nil
}
