// Command symbolize converts a CSV time series ("timestamp,value" rows)
// into its symbolic representation: it learns a lookup table from a leading
// portion of the data, streams the rest through the online encoder, and
// prints symbols (or packs them into a binary file):
//
//	symbolize -in house1.csv -method median -k 16 -window 900
//	symbolize -in house1.csv -k 8 -pack symbols.bin -table table.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"symmeter/internal/symbolic"
	"symmeter/internal/timeseries"
)

func main() {
	var (
		in        = flag.String("in", "", "input CSV path (required)")
		method    = flag.String("method", "median", "separator method: uniform|median|distinctmedian")
		k         = flag.Int("k", 16, "alphabet size (power of two)")
		window    = flag.Int64("window", 900, "vertical aggregation window in seconds (0 = none)")
		trainFrac = flag.Float64("train", 0.25, "fraction of the series used to learn the lookup table")
		packPath  = flag.String("pack", "", "write bit-packed symbols to this file instead of stdout")
		tablePath = flag.String("table", "", "write the serialised lookup table to this file")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "symbolize: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	series, err := timeseries.ReadCSV(*in, f)
	f.Close()
	if err != nil {
		fail(err)
	}
	if series.Empty() {
		fail(fmt.Errorf("%s: no data", *in))
	}

	m, err := symbolic.ParseMethod(*method)
	if err != nil {
		fail(err)
	}
	if *trainFrac <= 0 || *trainFrac >= 1 {
		fail(fmt.Errorf("train fraction %v must be in (0,1)", *trainFrac))
	}
	split := int(float64(series.Len()) * *trainFrac)
	if split < 1 {
		split = 1
	}
	var builder symbolic.TableBuilder
	builder.PushSeries(&timeseries.Series{Name: "train", Points: series.Points[:split]})
	table, err := builder.Build(m, *k)
	if err != nil {
		fail(err)
	}
	rest := &timeseries.Series{Name: series.Name, Points: series.Points[split:]}
	ss, err := symbolic.EncodeSeries(rest, table, *window)
	if err != nil {
		fail(err)
	}

	fmt.Fprintf(os.Stderr, "table: %s\n", table)
	fmt.Fprintf(os.Stderr, "encoded %d measurements into %d symbols\n", rest.Len(), ss.Len())

	if *tablePath != "" {
		if err := os.WriteFile(*tablePath, symbolic.MarshalTable(table), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote table to %s (%d bytes)\n", *tablePath, symbolic.TableWireSize(*k))
	}
	if *packPath != "" {
		data, err := symbolic.Pack(ss.Symbols())
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*packPath, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d packed bytes to %s (raw would be %d bytes)\n",
			len(data), *packPath, symbolic.RawSize(rest.Len()))
		return
	}
	for _, p := range ss.Points {
		fmt.Printf("%d %s\n", p.T, p.S)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "symbolize:", err)
	os.Exit(1)
}
