package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// writeTestCSV writes a small "timestamp,value" series and returns its path.
func writeTestCSV(t *testing.T, rows int) string {
	t.Helper()
	var b strings.Builder
	b.WriteString("timestamp,value\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, "%d,%g\n", i, 100+float64(i%50)*10)
	}
	path := filepath.Join(t.TempDir(), "series.csv")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

var symbolLine = regexp.MustCompile(`^\d+ \S+$`)

func TestSymbolizePrintsSymbols(t *testing.T) {
	in := writeTestCSV(t, 4000)
	var out, diag bytes.Buffer
	err := run([]string{"-in", in, "-window", "60", "-k", "8"}, &out, &diag)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(diag.String(), "encoded 3000 measurements") {
		t.Errorf("diagnostics missing encode summary:\n%s", diag.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 40 {
		t.Fatalf("only %d symbol lines for 3000 points at 60 s windows", len(lines))
	}
	for _, l := range lines {
		if !symbolLine.MatchString(l) {
			t.Fatalf("malformed symbol line %q", l)
		}
	}
}

func TestSymbolizePackAndTable(t *testing.T) {
	in := writeTestCSV(t, 2000)
	dir := t.TempDir()
	pack := filepath.Join(dir, "symbols.bin")
	table := filepath.Join(dir, "table.bin")
	var out, diag bytes.Buffer
	err := run([]string{
		"-in", in, "-window", "60", "-k", "8", "-pack", pack, "-table", table,
	}, &out, &diag)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("-pack should suppress stdout symbols, got %q", out.String())
	}
	for _, path := range []string{pack, table} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestSymbolizeErrors(t *testing.T) {
	var out, diag bytes.Buffer
	if err := run(nil, &out, &diag); err == nil {
		t.Fatal("missing -in should error")
	}
	if err := run([]string{"-in", "no-such-file.csv"}, &out, &diag); err == nil {
		t.Fatal("unreadable input should error")
	}
	in := writeTestCSV(t, 100)
	if err := run([]string{"-in", in, "-train", "2"}, &out, &diag); err == nil {
		t.Fatal("train fraction outside (0,1) should error")
	}
}
