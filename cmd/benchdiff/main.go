// Command benchdiff is the CI bench-regression gate: it compares the
// symbols/sec throughput of matching benchmarks between a committed baseline
// report (BENCH_7.json) and a freshly-measured one (BENCH_8.json) and fails
// when any compared benchmark regressed by more than the allowed fraction.
// Every problem — all regressed benchmarks and all benchmarks missing from
// the current report — is gathered and reported in one run, so a failing CI
// log shows the full regression set rather than the first casualty.
//
//	benchdiff -baseline BENCH_7.json -current BENCH_8.json -max-regress 0.20
//
// The codec benchmarks (pack/*, unpack/*), the raw kernel benchmarks
// (kernel/*), the compressed-domain query benchmarks (query/*) and the
// remote-query benchmarks (netquery/*) are compared by default: the
// workloads are identical across report schemas, so a slowdown is a real
// kernel, query-path or wire-path regression rather than a fixture change.
// Store benchmarks change shape as the storage engine evolves; they are
// tracked by inspection of the uploaded artifacts instead.
//
// The kernel/* rows run on whatever SIMD dispatch path the machine supports,
// so they are only comparable between reports taken on matching silicon:
// when the two reports' cpu sections disagree on (goarch, dispatch) — or the
// baseline predates schema 8 and has no cpu section — the kernel/* family is
// skipped with a note instead of gating AVX2 numbers against scalar ones.
//
// Ruler choice matters: a ruler must be a pure CPU kernel so its ratio to
// the gated benchmark is hardware-invariant. The codec families use their
// bit-at-a-time twins (same data, same subsystem; observed ratio stability
// ±1% across CPU states). The query family is normalized by unpack/bitwise —
// also a pure integer kernel — NOT by its decode-then-aggregate baseline
// twins: those allocate megabytes per op, their throughput swings ±30% with
// allocator and GC state on identical code, and a gate on that ratio fails
// on weather. The baseline twins stay in the artifact for the speedup
// headline; they are just not a precision instrument. The netquery family is
// normalized by its same-run in-process engine twin (netquery/X →
// query/X): both run the identical engine on the identical fixture, so the
// ratio is pure protocol + loopback-socket overhead, which neither CPU speed
// nor allocator state moves — a regression there is real wire-path code.
// That ratio is only meaningful while the twin measures the same engine code
// in both reports, though: when a change speeds up the engine itself (the
// twin moves past the regression budget against the hardware ruler), the
// affected netquery rows fall back to gating against unpack/bitwise — a real
// wire slowdown still fails, but an engine speedup is not misread as one.
//
// The committed baseline was measured on a different machine than CI runs
// on, so absolute symbols/sec would gate hardware variance, not code. Each
// compared benchmark is therefore normalized by its own report's frozen
// same-run ruler: pack/bitwise for the pack family, unpack/bitwise for the
// unpack and query families — the gated quantity is the speedup over the
// ruler, which a slower runner scales identically in both. Reports lacking
// the ruler fall back to absolute throughput.
//
// Excluded by default: the allocating convenience wrappers (pack/word,
// unpack/word), whose cost is dominated by the allocator and jitters
// ±15-20% with heap state — which a 20% gate cannot distinguish from a
// regression — and query/meter-window, which has no same-run ruler (a
// per-meter decode-then-aggregate baseline is not measured) and would gate
// raw hardware variance. All stay visible in the uploaded artifacts.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// report is the subset of a bench JSON document benchdiff needs — it reads
// every schema since 2 (the cpu section is simply absent before schema 8).
type report struct {
	Schema string `json:"schema"`
	CPU    struct {
		GOARCH   string `json:"goarch"`
		Dispatch string `json:"dispatch"`
	} `json:"cpu"`
	Results []struct {
		Name          string  `json:"name"`
		SymbolsPerSec float64 `json:"symbols_per_sec"`
	} `json:"results"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		baselinePath = fs.String("baseline", "BENCH_7.json", "committed baseline report")
		currentPath  = fs.String("current", "BENCH_8.json", "freshly-measured report")
		maxRegress   = fs.Float64("max-regress", 0.20, "maximum allowed throughput regression fraction")
		prefixes     = fs.String("prefixes", "pack/,unpack/,kernel/,query/,netquery/", "comma-separated benchmark name prefixes to compare")
		exclude      = fs.String("exclude", "pack/word,unpack/word,query/meter-window", "comma-separated exact benchmark names to skip (allocator-noise-dominated or ruler-less)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	base, err := load(*baselinePath)
	if err != nil {
		return err
	}
	cur, err := load(*currentPath)
	if err != nil {
		return err
	}
	baseOf := rates(base)
	curOf := rates(cur)

	wanted := strings.Split(*prefixes, ",")
	excluded := map[string]bool{}
	for _, name := range strings.Split(*exclude, ",") {
		if name != "" {
			excluded[name] = true
		}
	}
	// Kernel rows measure whatever SIMD tier each machine dispatched to;
	// comparing an AVX2 current against a scalar (or pre-schema-8) baseline
	// would gate silicon, not code.
	kernelComparable := base.CPU.GOARCH == cur.CPU.GOARCH &&
		base.CPU.Dispatch == cur.CPU.Dispatch && cur.CPU.Dispatch != ""
	if !kernelComparable {
		fmt.Fprintf(out, "kernel/* skipped: baseline dispatch %q/%q vs current %q/%q not comparable\n",
			base.CPU.GOARCH, base.CPU.Dispatch, cur.CPU.GOARCH, cur.CPU.Dispatch)
	}
	// The netquery rows gate wire overhead by normalizing against their
	// same-run in-process engine twin — a ratio that is only meaningful while
	// the twin measures the same engine code in both reports. When a change
	// speeds up the engine itself (the twin moves against the hardware ruler),
	// the wire/engine ratio shifts with no wire-path change at all, and gating
	// it would flag an engine improvement as a wire regression. Such rows fall
	// back to the hardware ruler (unpack/bitwise), which still catches a
	// genuine wire-path slowdown, and say so in the output.
	twinShift := func(name string) (shift float64, moved bool) {
		family, rest, ok := strings.Cut(name, "/")
		if !ok || family != "netquery" {
			return 0, false
		}
		baseRuler, curRuler := baseOf["unpack/bitwise"], curOf["unpack/bitwise"]
		baseTwin, curTwin := baseOf["query/"+rest], curOf["query/"+rest]
		if baseRuler <= 0 || curRuler <= 0 || baseTwin <= 0 || curTwin <= 0 {
			return 0, false
		}
		shift = (curTwin / curRuler) / (baseTwin / baseRuler)
		return shift, shift > 1+*maxRegress || shift < 1-*maxRegress
	}
	gated := func(name string) bool {
		if excluded[name] {
			return false
		}
		if strings.HasPrefix(name, "kernel/") && !kernelComparable {
			return false
		}
		for _, p := range wanted {
			if p != "" && strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	compared := 0
	var failures []string
	for _, r := range cur.Results {
		if !gated(r.Name) {
			continue
		}
		ref, ok := baseOf[r.Name]
		if !ok || ref <= 0 {
			continue // new benchmark, nothing to regress against
		}
		// Normalize both sides by their own run's frozen bitwise baseline so
		// the hardware factor cancels; the family baseline itself (x/bitwise)
		// then always compares at 1.00x, which is correct — it is the ruler.
		refNorm, curNorm := normalizer(baseOf, r.Name), normalizer(curOf, r.Name)
		if shift, moved := twinShift(r.Name); moved {
			fmt.Fprintf(out, "%s: engine twin moved %.2fx vs the hardware ruler; gating against unpack/bitwise instead\n", r.Name, shift)
			refNorm, curNorm = baseOf["unpack/bitwise"], curOf["unpack/bitwise"]
		}
		if refNorm <= 0 || curNorm <= 0 {
			refNorm, curNorm = 1, 1
		}
		compared++
		ratio := (r.SymbolsPerSec / curNorm) / (ref / refNorm)
		status := "ok"
		if ratio < 1-*maxRegress {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s: %.2fx of baseline", r.Name, ratio))
		}
		fmt.Fprintf(out, "%-24s %14.0f -> %14.0f sym/s  (%.2fx relative) %s\n", r.Name, ref, r.SymbolsPerSec, ratio, status)
	}
	// A gated benchmark that disappears from the current report is lost
	// coverage, not a pass — dropping or renaming one must come with a
	// conscious baseline update.
	var missing []string
	for _, r := range base.Results {
		if !gated(r.Name) {
			continue
		}
		if _, ok := curOf[r.Name]; !ok {
			missing = append(missing, r.Name)
		}
	}
	// Gather every problem class before failing: a CI run must show the
	// whole regression set (plus any lost coverage) in one pass, not die on
	// the first finding and hide the rest.
	var problems []string
	if len(failures) > 0 {
		problems = append(problems, fmt.Sprintf("%d benchmark(s) regressed past their allowed fraction: %s",
			len(failures), strings.Join(failures, "; ")))
	}
	if len(missing) > 0 {
		problems = append(problems, fmt.Sprintf("baseline benchmark(s) missing from %s: %s (update the baseline deliberately if they were retired)",
			*currentPath, strings.Join(missing, ", ")))
	}
	if compared == 0 {
		problems = append(problems, fmt.Sprintf("no comparable benchmarks between %s and %s (prefixes %q)",
			*baselinePath, *currentPath, *prefixes))
	}
	if len(problems) > 0 {
		return errors.New(strings.Join(problems, "; also: "))
	}
	fmt.Fprintf(out, "%d benchmarks within %.0f%% of baseline\n", compared, *maxRegress*100)
	return nil
}

// rates indexes a report's throughputs by benchmark name.
func rates(r *report) map[string]float64 {
	m := make(map[string]float64, len(r.Results))
	for _, res := range r.Results {
		m[res.Name] = res.SymbolsPerSec
	}
	return m
}

// normalizer returns the throughput of name's frozen same-run ruler within
// the same report — the bit-at-a-time twin for the codec families
// ("pack/…" → "pack/bitwise"), the bit-at-a-time decoder for the query
// family (a pure integer kernel, so the ratio cancels hardware; see the
// package comment for why the allocation-heavy decode-then-aggregate twins
// are not used), and the same-run in-process engine twin for the netquery
// family ("netquery/X" → "query/X", so the gated quantity is wire overhead
// alone) — or 0 when the report has none (callers then compare absolutes).
func normalizer(rates map[string]float64, name string) float64 {
	family, rest, ok := strings.Cut(name, "/")
	if !ok {
		return 0
	}
	switch family {
	case "query":
		return rates["unpack/bitwise"]
	case "netquery":
		return rates["query/"+rest]
	case "kernel":
		// The kernel family's hardware ruler is the same pure integer
		// bit-at-a-time decoder the query family uses; the forced-scalar
		// twins (kernel/X-scalar) normalize by it identically, so both the
		// SIMD rows and their scalar twins gate speedup-over-ruler.
		return rates["unpack/bitwise"]
	}
	return rates[family+"/bitwise"]
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Results) == 0 {
		return nil, fmt.Errorf("%s: no results", path)
	}
	return &r, nil
}
