package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name, schema string, rates map[string]float64) string {
	t.Helper()
	type result struct {
		Name          string  `json:"name"`
		SymbolsPerSec float64 `json:"symbols_per_sec"`
	}
	doc := struct {
		Schema  string   `json:"schema"`
		Results []result `json:"results"`
	}{Schema: schema}
	for bench, r := range rates {
		doc.Results = append(doc.Results, result{Name: bench, SymbolsPerSec: r})
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffWithinBudget(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "symmeter-bench/2", map[string]float64{
		"pack/word-append": 1000000,
		"unpack/word-into": 2000000,
		"store/append":     900000, // not compared (prefix filter)
	})
	cur := writeReport(t, dir, "cur.json", "symmeter-bench/3", map[string]float64{
		"pack/word-append": 900000, // -10%: within the 20% budget
		"unpack/word-into": 2500000,
		"store/append":     100, // huge regression, but filtered out
		"query/new-kind":   42,  // new benchmark: ignored
	})
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "2 benchmarks within 20%") {
		t.Fatalf("unexpected summary:\n%s", out.String())
	}
}

func TestDiffCatchesRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "symmeter-bench/2", map[string]float64{
		"pack/word-append": 1000000,
		"unpack/word-into": 2000000,
	})
	cur := writeReport(t, dir, "cur.json", "symmeter-bench/3", map[string]float64{
		"pack/word-append": 700000, // -30%: over budget
		"unpack/word-into": 2000000,
	})
	var out bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur}, &out)
	if err == nil {
		t.Fatalf("want regression error, got none:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "pack/word-append") {
		t.Fatalf("error does not name the regressed benchmark: %v", err)
	}
}

// TestDiffNormalizesAcrossMachines pins the cross-machine contract: a
// uniformly slower runner (every benchmark halved, bitwise baseline
// included) is not a regression, while a kernel that lost speedup relative
// to its own run's bitwise baseline is — even when its absolute throughput
// looks acceptable on a faster machine.
func TestDiffNormalizesAcrossMachines(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "symmeter-bench/2", map[string]float64{
		"pack/word-append": 1000000, // 10x the bitwise ruler
		"pack/bitwise":     100000,
	})
	slowRunner := writeReport(t, dir, "slow.json", "symmeter-bench/3", map[string]float64{
		"pack/word-append": 500000, // half the absolute speed, same 10x speedup
		"pack/bitwise":     50000,
	})
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", slowRunner}, &out); err != nil {
		t.Fatalf("uniformly slower runner flagged as regression: %v\n%s", err, out.String())
	}

	fastButRegressed := writeReport(t, dir, "fast.json", "symmeter-bench/3", map[string]float64{
		"pack/word-append": 1200000, // absolutely faster, but only 6x its ruler
		"pack/bitwise":     200000,
	})
	out.Reset()
	if err := run([]string{"-baseline", base, "-current", fastButRegressed}, &out); err == nil {
		t.Fatalf("relative kernel regression masked by a faster machine:\n%s", out.String())
	}
}

// TestDiffMissingBenchmark pins the coverage-loss guard: a gated benchmark
// that vanishes from the current report fails the diff instead of silently
// shrinking the gate.
func TestDiffMissingBenchmark(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "symmeter-bench/2", map[string]float64{
		"pack/word-append": 1000000,
		"pack/retired":     500000,
	})
	cur := writeReport(t, dir, "cur.json", "symmeter-bench/3", map[string]float64{
		"pack/word-append": 1000000,
	})
	var out bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur}, &out)
	if err == nil || !strings.Contains(err.Error(), "pack/retired") {
		t.Fatalf("dropped benchmark not flagged: %v\n%s", err, out.String())
	}
}

// TestDiffExcludesAllocatingWrappers pins the default exclusion: the
// allocator-noise-dominated pack/word and unpack/word are not gated (even
// when badly regressed) unless -exclude is overridden.
func TestDiffExcludesAllocatingWrappers(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "symmeter-bench/2", map[string]float64{
		"pack/word":        1000000,
		"pack/word-append": 1000000,
	})
	cur := writeReport(t, dir, "cur.json", "symmeter-bench/3", map[string]float64{
		"pack/word":        100000, // 10x down, but excluded by default
		"pack/word-append": 950000,
	})
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err != nil {
		t.Fatalf("excluded benchmark gated anyway: %v\n%s", err, out.String())
	}
	out.Reset()
	if err := run([]string{"-baseline", base, "-current", cur, "-exclude", ""}, &out); err == nil {
		t.Fatalf("-exclude '' should gate the wrapper:\n%s", out.String())
	}
}

func TestDiffNoComparable(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "s", map[string]float64{"store/x": 1})
	cur := writeReport(t, dir, "cur.json", "s", map[string]float64{"store/x": 1})
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err == nil {
		t.Fatal("want error when nothing is comparable")
	}
}

func TestDiffMissingFile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-baseline", "/nonexistent.json"}, &out); err == nil {
		t.Fatal("want error for missing baseline")
	}
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatalf("-h should be nil, got %v", err)
	}
}

// TestDiffQueryNormalizedByKernelRuler pins the query family's ruler: the
// pure-integer unpack/bitwise kernel measured in the same run, so a
// uniformly slower machine passes while a lost query speedup fails even at
// higher absolute throughput.
func TestDiffQueryNormalizedByKernelRuler(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "symmeter-bench/4", map[string]float64{
		"query/fleet-sum": 4000000, // 40x the kernel ruler
		"unpack/bitwise":  100000,
	})
	slowRunner := writeReport(t, dir, "slow.json", "symmeter-bench/5", map[string]float64{
		"query/fleet-sum": 2000000, // half the speed, same 40x over the ruler
		"unpack/bitwise":  50000,
	})
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", slowRunner, "-prefixes", "query/"}, &out); err != nil {
		t.Fatalf("uniformly slower runner flagged as query regression: %v\n%s", err, out.String())
	}
	fastButRegressed := writeReport(t, dir, "fast.json", "symmeter-bench/5", map[string]float64{
		"query/fleet-sum": 5000000, // absolutely faster, but only 25x its ruler
		"unpack/bitwise":  200000,
	})
	out.Reset()
	err := run([]string{"-baseline", base, "-current", fastButRegressed, "-prefixes", "query/"}, &out)
	if err == nil || !strings.Contains(err.Error(), "query/fleet-sum") {
		t.Fatalf("query speedup regression not caught: %v\n%s", err, out.String())
	}
}

// TestDiffExcludesMeterWindow pins the default exclusion of the ruler-less
// query/meter-window benchmark: absolute cross-machine throughput is not a
// gateable quantity.
func TestDiffExcludesMeterWindow(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "symmeter-bench/3", map[string]float64{
		"query/fleet-sum":    4000000,
		"baseline/fleet-sum": 100000,
		"query/meter-window": 9000000,
	})
	cur := writeReport(t, dir, "cur.json", "symmeter-bench/4", map[string]float64{
		"query/fleet-sum":    4000000,
		"baseline/fleet-sum": 100000,
		"query/meter-window": 900000, // 10x down, but excluded by default
	})
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err != nil {
		t.Fatalf("excluded query/meter-window gated anyway: %v\n%s", err, out.String())
	}
}

// TestDiffReportsAllProblemsAtOnce pins the one-run-full-report contract:
// two independent regressions plus a benchmark missing from the current
// report must all appear in a single error, and every comparison line must
// still have been printed.
func TestDiffReportsAllProblemsAtOnce(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "symmeter-bench/4", map[string]float64{
		"pack/word-append": 1000000,
		"unpack/word-into": 2000000,
		"query/fleet-sum":  500000,
	})
	cur := writeReport(t, dir, "cur.json", "symmeter-bench/5", map[string]float64{
		"pack/word-append": 100000, // -90%
		"unpack/word-into": 200000, // -90%
		// query/fleet-sum missing entirely
	})
	var out bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur}, &out)
	if err == nil {
		t.Fatal("two regressions + one missing benchmark must fail")
	}
	msg := err.Error()
	for _, want := range []string{
		"2 benchmark(s) regressed",
		"pack/word-append",
		"unpack/word-into",
		"missing",
		"query/fleet-sum",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("combined error missing %q: %s", want, msg)
		}
	}
	// Both comparisons were printed before failing — nothing died early.
	if got := strings.Count(out.String(), "REGRESSED"); got != 2 {
		t.Errorf("want 2 REGRESSED lines in output, got %d:\n%s", got, out.String())
	}
}

// TestDiffQueryRuler pins the query family's normalizer: the pure-kernel
// unpack/bitwise ruler, not the allocation-dominated decode-then-aggregate
// twins. A run where the baseline twin sped up 50% (allocator weather) but
// query throughput and the kernel ruler are unchanged must pass; a genuine
// query slowdown against the kernel ruler must fail.
func TestDiffQueryRuler(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "symmeter-bench/4", map[string]float64{
		"query/fleet-sum":    10000000,
		"baseline/fleet-sum": 100000,
		"unpack/bitwise":     1000000,
	})
	weather := writeReport(t, dir, "weather.json", "symmeter-bench/5", map[string]float64{
		"query/fleet-sum":    10000000,
		"baseline/fleet-sum": 150000, // decode baseline sped up: irrelevant
		"unpack/bitwise":     1000000,
	})
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", weather, "-prefixes", "query/"}, &out); err != nil {
		t.Fatalf("baseline-twin weather must not gate the query family: %v\n%s", err, out.String())
	}
	slow := writeReport(t, dir, "slow.json", "symmeter-bench/5", map[string]float64{
		"query/fleet-sum":    7000000, // 0.70x against an unchanged kernel ruler
		"baseline/fleet-sum": 100000,
		"unpack/bitwise":     1000000,
	})
	if err := run([]string{"-baseline", base, "-current", slow, "-prefixes", "query/"}, &out); err == nil {
		t.Fatal("a 30% query slowdown against the kernel ruler must fail")
	}
}
