package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name, schema string, rates map[string]float64) string {
	t.Helper()
	return writeReportCPU(t, dir, name, schema, "", "", rates)
}

// writeReportCPU writes a report carrying a schema-8 cpu section when goarch
// is non-empty (older schemas simply omit it).
func writeReportCPU(t *testing.T, dir, name, schema, goarch, dispatch string, rates map[string]float64) string {
	t.Helper()
	type result struct {
		Name          string  `json:"name"`
		SymbolsPerSec float64 `json:"symbols_per_sec"`
	}
	type cpu struct {
		GOARCH   string `json:"goarch"`
		Dispatch string `json:"dispatch"`
	}
	doc := struct {
		Schema  string   `json:"schema"`
		CPU     *cpu     `json:"cpu,omitempty"`
		Results []result `json:"results"`
	}{Schema: schema}
	if goarch != "" {
		doc.CPU = &cpu{GOARCH: goarch, Dispatch: dispatch}
	}
	for bench, r := range rates {
		doc.Results = append(doc.Results, result{Name: bench, SymbolsPerSec: r})
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffWithinBudget(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "symmeter-bench/2", map[string]float64{
		"pack/word-append": 1000000,
		"unpack/word-into": 2000000,
		"store/append":     900000, // not compared (prefix filter)
	})
	cur := writeReport(t, dir, "cur.json", "symmeter-bench/3", map[string]float64{
		"pack/word-append": 900000, // -10%: within the 20% budget
		"unpack/word-into": 2500000,
		"store/append":     100, // huge regression, but filtered out
		"query/new-kind":   42,  // new benchmark: ignored
	})
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "2 benchmarks within 20%") {
		t.Fatalf("unexpected summary:\n%s", out.String())
	}
}

func TestDiffCatchesRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "symmeter-bench/2", map[string]float64{
		"pack/word-append": 1000000,
		"unpack/word-into": 2000000,
	})
	cur := writeReport(t, dir, "cur.json", "symmeter-bench/3", map[string]float64{
		"pack/word-append": 700000, // -30%: over budget
		"unpack/word-into": 2000000,
	})
	var out bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur}, &out)
	if err == nil {
		t.Fatalf("want regression error, got none:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "pack/word-append") {
		t.Fatalf("error does not name the regressed benchmark: %v", err)
	}
}

// TestDiffNormalizesAcrossMachines pins the cross-machine contract: a
// uniformly slower runner (every benchmark halved, bitwise baseline
// included) is not a regression, while a kernel that lost speedup relative
// to its own run's bitwise baseline is — even when its absolute throughput
// looks acceptable on a faster machine.
func TestDiffNormalizesAcrossMachines(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "symmeter-bench/2", map[string]float64{
		"pack/word-append": 1000000, // 10x the bitwise ruler
		"pack/bitwise":     100000,
	})
	slowRunner := writeReport(t, dir, "slow.json", "symmeter-bench/3", map[string]float64{
		"pack/word-append": 500000, // half the absolute speed, same 10x speedup
		"pack/bitwise":     50000,
	})
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", slowRunner}, &out); err != nil {
		t.Fatalf("uniformly slower runner flagged as regression: %v\n%s", err, out.String())
	}

	fastButRegressed := writeReport(t, dir, "fast.json", "symmeter-bench/3", map[string]float64{
		"pack/word-append": 1200000, // absolutely faster, but only 6x its ruler
		"pack/bitwise":     200000,
	})
	out.Reset()
	if err := run([]string{"-baseline", base, "-current", fastButRegressed}, &out); err == nil {
		t.Fatalf("relative kernel regression masked by a faster machine:\n%s", out.String())
	}
}

// TestDiffMissingBenchmark pins the coverage-loss guard: a gated benchmark
// that vanishes from the current report fails the diff instead of silently
// shrinking the gate.
func TestDiffMissingBenchmark(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "symmeter-bench/2", map[string]float64{
		"pack/word-append": 1000000,
		"pack/retired":     500000,
	})
	cur := writeReport(t, dir, "cur.json", "symmeter-bench/3", map[string]float64{
		"pack/word-append": 1000000,
	})
	var out bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur}, &out)
	if err == nil || !strings.Contains(err.Error(), "pack/retired") {
		t.Fatalf("dropped benchmark not flagged: %v\n%s", err, out.String())
	}
}

// TestDiffExcludesAllocatingWrappers pins the default exclusion: the
// allocator-noise-dominated pack/word and unpack/word are not gated (even
// when badly regressed) unless -exclude is overridden.
func TestDiffExcludesAllocatingWrappers(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "symmeter-bench/2", map[string]float64{
		"pack/word":        1000000,
		"pack/word-append": 1000000,
	})
	cur := writeReport(t, dir, "cur.json", "symmeter-bench/3", map[string]float64{
		"pack/word":        100000, // 10x down, but excluded by default
		"pack/word-append": 950000,
	})
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err != nil {
		t.Fatalf("excluded benchmark gated anyway: %v\n%s", err, out.String())
	}
	out.Reset()
	if err := run([]string{"-baseline", base, "-current", cur, "-exclude", ""}, &out); err == nil {
		t.Fatalf("-exclude '' should gate the wrapper:\n%s", out.String())
	}
}

func TestDiffNoComparable(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "s", map[string]float64{"store/x": 1})
	cur := writeReport(t, dir, "cur.json", "s", map[string]float64{"store/x": 1})
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err == nil {
		t.Fatal("want error when nothing is comparable")
	}
}

func TestDiffMissingFile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-baseline", "/nonexistent.json"}, &out); err == nil {
		t.Fatal("want error for missing baseline")
	}
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatalf("-h should be nil, got %v", err)
	}
}

// TestDiffQueryNormalizedByKernelRuler pins the query family's ruler: the
// pure-integer unpack/bitwise kernel measured in the same run, so a
// uniformly slower machine passes while a lost query speedup fails even at
// higher absolute throughput.
func TestDiffQueryNormalizedByKernelRuler(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "symmeter-bench/4", map[string]float64{
		"query/fleet-sum": 4000000, // 40x the kernel ruler
		"unpack/bitwise":  100000,
	})
	slowRunner := writeReport(t, dir, "slow.json", "symmeter-bench/5", map[string]float64{
		"query/fleet-sum": 2000000, // half the speed, same 40x over the ruler
		"unpack/bitwise":  50000,
	})
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", slowRunner, "-prefixes", "query/"}, &out); err != nil {
		t.Fatalf("uniformly slower runner flagged as query regression: %v\n%s", err, out.String())
	}
	fastButRegressed := writeReport(t, dir, "fast.json", "symmeter-bench/5", map[string]float64{
		"query/fleet-sum": 5000000, // absolutely faster, but only 25x its ruler
		"unpack/bitwise":  200000,
	})
	out.Reset()
	err := run([]string{"-baseline", base, "-current", fastButRegressed, "-prefixes", "query/"}, &out)
	if err == nil || !strings.Contains(err.Error(), "query/fleet-sum") {
		t.Fatalf("query speedup regression not caught: %v\n%s", err, out.String())
	}
}

// TestDiffExcludesMeterWindow pins the default exclusion of the ruler-less
// query/meter-window benchmark: absolute cross-machine throughput is not a
// gateable quantity.
func TestDiffExcludesMeterWindow(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "symmeter-bench/3", map[string]float64{
		"query/fleet-sum":    4000000,
		"baseline/fleet-sum": 100000,
		"query/meter-window": 9000000,
	})
	cur := writeReport(t, dir, "cur.json", "symmeter-bench/4", map[string]float64{
		"query/fleet-sum":    4000000,
		"baseline/fleet-sum": 100000,
		"query/meter-window": 900000, // 10x down, but excluded by default
	})
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err != nil {
		t.Fatalf("excluded query/meter-window gated anyway: %v\n%s", err, out.String())
	}
}

// TestDiffReportsAllProblemsAtOnce pins the one-run-full-report contract:
// two independent regressions plus a benchmark missing from the current
// report must all appear in a single error, and every comparison line must
// still have been printed.
func TestDiffReportsAllProblemsAtOnce(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "symmeter-bench/4", map[string]float64{
		"pack/word-append": 1000000,
		"unpack/word-into": 2000000,
		"query/fleet-sum":  500000,
	})
	cur := writeReport(t, dir, "cur.json", "symmeter-bench/5", map[string]float64{
		"pack/word-append": 100000, // -90%
		"unpack/word-into": 200000, // -90%
		// query/fleet-sum missing entirely
	})
	var out bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur}, &out)
	if err == nil {
		t.Fatal("two regressions + one missing benchmark must fail")
	}
	msg := err.Error()
	for _, want := range []string{
		"2 benchmark(s) regressed",
		"pack/word-append",
		"unpack/word-into",
		"missing",
		"query/fleet-sum",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("combined error missing %q: %s", want, msg)
		}
	}
	// Both comparisons were printed before failing — nothing died early.
	if got := strings.Count(out.String(), "REGRESSED"); got != 2 {
		t.Errorf("want 2 REGRESSED lines in output, got %d:\n%s", got, out.String())
	}
}

// TestDiffKernelDispatchGuard pins the kernel-family comparability rule:
// kernel/* rows gate only when both reports ran the same dispatch path on
// the same GOARCH. A dispatch mismatch — including a pre-schema-8 baseline
// with no cpu section at all — skips the family (even a 10x "regression"
// passes, with a skip note), it does not lose the other families' gating.
func TestDiffKernelDispatchGuard(t *testing.T) {
	dir := t.TempDir()
	kernelRates := func(kps float64) map[string]float64 {
		return map[string]float64{
			"kernel/hist":      kps,
			"unpack/bitwise":   100000,
			"unpack/word-into": 400000,
		}
	}
	oldBase := writeReport(t, dir, "old.json", "symmeter-bench/7", kernelRates(1000000))
	scalarBase := writeReportCPU(t, dir, "scalar.json", "symmeter-bench/8", "amd64", "scalar", kernelRates(1000000))
	avx2Slow := writeReportCPU(t, dir, "avx2.json", "symmeter-bench/8", "amd64", "avx2", kernelRates(100000))

	for _, tc := range []struct{ name, base string }{
		{"pre-schema-8 baseline", oldBase},
		{"dispatch mismatch", scalarBase},
	} {
		var out bytes.Buffer
		if err := run([]string{"-baseline", tc.base, "-current", avx2Slow}, &out); err != nil {
			t.Fatalf("%s: kernel rows gated across dispatch paths: %v\n%s", tc.name, err, out.String())
		}
		if !strings.Contains(out.String(), "kernel/* skipped") {
			t.Fatalf("%s: no skip note:\n%s", tc.name, out.String())
		}
	}

	// Same dispatch on both sides: a kernel regression must gate.
	avx2Base := writeReportCPU(t, dir, "avx2base.json", "symmeter-bench/8", "amd64", "avx2", kernelRates(1000000))
	var out bytes.Buffer
	err := run([]string{"-baseline", avx2Base, "-current", avx2Slow}, &out)
	if err == nil || !strings.Contains(err.Error(), "kernel/hist") {
		t.Fatalf("matched-dispatch kernel regression not caught: %v\n%s", err, out.String())
	}

	// The guard must not mask regressions in other families.
	otherSlow := writeReportCPU(t, dir, "otherslow.json", "symmeter-bench/8", "amd64", "avx2",
		map[string]float64{
			"kernel/hist":      1000000,
			"unpack/bitwise":   100000,
			"unpack/word-into": 100000, // -75% vs scalarBase's 4x ruler ratio
		})
	err = run([]string{"-baseline", scalarBase, "-current", otherSlow}, &out)
	if err == nil || !strings.Contains(err.Error(), "unpack/word-into") {
		t.Fatalf("dispatch skip swallowed a codec regression: %v\n%s", err, out.String())
	}
}

// TestDiffNetqueryTwinShiftFallback pins the netquery comparability rule:
// when the in-process engine twin itself moved past the regression budget
// against the hardware ruler (an engine speedup, not a wire change), the
// netquery row is gated against unpack/bitwise instead of the twin — so an
// engine improvement does not read as a wire regression, but a genuine
// wire-path slowdown still fails even with the twin shifted.
func TestDiffNetqueryTwinShiftFallback(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "symmeter-bench/7", map[string]float64{
		"netquery/meter-window": 300000,  // 10x wire overhead vs the twin
		"query/meter-window":    3000000, // 30x the hardware ruler
		"unpack/bitwise":        100000,
	})
	// Engine sped up 2x against the ruler; wire throughput unchanged. The
	// twin-normalized ratio would be 0.50x — a false regression.
	engineFaster := writeReport(t, dir, "fast.json", "symmeter-bench/8", map[string]float64{
		"netquery/meter-window": 300000,
		"query/meter-window":    6000000,
		"unpack/bitwise":        100000,
	})
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", engineFaster, "-prefixes", "netquery/"}, &out); err != nil {
		t.Fatalf("engine speedup misread as wire regression: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "engine twin moved") {
		t.Fatalf("no twin-shift note:\n%s", out.String())
	}
	// Engine sped up AND the wire path genuinely slowed 2x against the
	// hardware ruler: the fallback must still catch it.
	wireSlow := writeReport(t, dir, "slow.json", "symmeter-bench/8", map[string]float64{
		"netquery/meter-window": 150000,
		"query/meter-window":    6000000,
		"unpack/bitwise":        100000,
	})
	out.Reset()
	err := run([]string{"-baseline", base, "-current", wireSlow, "-prefixes", "netquery/"}, &out)
	if err == nil || !strings.Contains(err.Error(), "netquery/meter-window") {
		t.Fatalf("wire regression masked by twin-shift fallback: %v\n%s", err, out.String())
	}
	// A stable twin keeps the precise wire-overhead gate: wire throughput
	// that only tracks the twin's small drift must pass via the twin ruler.
	stableTwin := writeReport(t, dir, "stable.json", "symmeter-bench/8", map[string]float64{
		"netquery/meter-window": 270000,  // 0.90x — fine against a 0.90x twin
		"query/meter-window":    2700000, // within the 20% twin-shift budget
		"unpack/bitwise":        100000,
	})
	out.Reset()
	if err := run([]string{"-baseline", base, "-current", stableTwin, "-prefixes", "netquery/"}, &out); err != nil {
		t.Fatalf("stable-twin wire ratio misgated: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "engine twin moved") {
		t.Fatalf("twin-shift note on a stable twin:\n%s", out.String())
	}
}

// TestDiffQueryRuler pins the query family's normalizer: the pure-kernel
// unpack/bitwise ruler, not the allocation-dominated decode-then-aggregate
// twins. A run where the baseline twin sped up 50% (allocator weather) but
// query throughput and the kernel ruler are unchanged must pass; a genuine
// query slowdown against the kernel ruler must fail.
func TestDiffQueryRuler(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "symmeter-bench/4", map[string]float64{
		"query/fleet-sum":    10000000,
		"baseline/fleet-sum": 100000,
		"unpack/bitwise":     1000000,
	})
	weather := writeReport(t, dir, "weather.json", "symmeter-bench/5", map[string]float64{
		"query/fleet-sum":    10000000,
		"baseline/fleet-sum": 150000, // decode baseline sped up: irrelevant
		"unpack/bitwise":     1000000,
	})
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", weather, "-prefixes", "query/"}, &out); err != nil {
		t.Fatalf("baseline-twin weather must not gate the query family: %v\n%s", err, out.String())
	}
	slow := writeReport(t, dir, "slow.json", "symmeter-bench/5", map[string]float64{
		"query/fleet-sum":    7000000, // 0.70x against an unchanged kernel ruler
		"baseline/fleet-sum": 100000,
		"unpack/bitwise":     1000000,
	})
	if err := run([]string{"-baseline", base, "-current", slow, "-prefixes", "query/"}, &out); err == nil {
		t.Fatal("a 30% query slowdown against the kernel ruler must fail")
	}
}
