package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestServeEndToEnd runs the whole binary in-process: a real listener on
// 127.0.0.1:0, two concurrent meters, and the printed reconstruction
// summary.
func TestServeEndToEnd(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-meters", "2", "-shards", "4", "-seconds", "600", "-window", "60",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"server listening on 127.0.0.1:",
		"(4 shards)",
		"fleet: 2 meters",
		"symbols/sec)",
		"bytes in",
		"session errors: 0",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if n := strings.Count(got, "raw -> "); n != 2 {
		t.Errorf("want 2 per-meter summary lines, got %d:\n%s", n, got)
	}
}

func TestServeBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-meters", "not-a-number"}, &out); err == nil {
		t.Fatal("bad flag value should error")
	}
	if err := run([]string{"-meters", "0"}, &out); err == nil {
		t.Fatal("zero meters should error")
	}
}
