package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestServeEndToEnd runs the whole binary in-process: a real listener on
// 127.0.0.1:0, two concurrent meters, and the printed reconstruction
// summary.
func TestServeEndToEnd(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-meters", "2", "-shards", "4", "-seconds", "600", "-window", "60",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"server listening on 127.0.0.1:",
		"(4 shards)",
		"fleet: 2 meters",
		"symbols/sec)",
		"compressed-domain",
		"query: fleet mean",
		"bytes in",
		"session errors: 0",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if n := strings.Count(got, "raw -> "); n != 2 {
		t.Errorf("want 2 per-meter summary lines, got %d:\n%s", n, got)
	}
}

// TestServeHistogramAndProfiles covers the query-range flags, the fleet
// histogram, and the pprof plumbing in one end-to-end run.
func TestServeHistogramAndProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.out"), filepath.Join(dir, "mem.out")
	var out bytes.Buffer
	// The two training days precede the streamed day, so live timestamps
	// start at 2·86400 = 172800.
	err := run([]string{
		"-meters", "1", "-shards", "2", "-seconds", "600", "-window", "60",
		"-hist", "-qfrom", "172800", "-qto", "173100",
		"-cpuprofile", cpu, "-memprofile", mem,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "query: histogram (level 4):") {
		t.Errorf("output missing histogram line:\n%s", got)
	}
	// The generator simulates missing windows, so the exact count varies;
	// the range must be echoed and must cover at least one point.
	if !strings.Contains(got, "over [172800,173100)") || strings.Contains(got, "— 0 points") {
		t.Errorf("query over [172800,173100) should report its range and cover points:\n%s", got)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err %v)", p, err)
		}
	}
}

func TestServeBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-meters", "not-a-number"}, &out); err == nil {
		t.Fatal("bad flag value should error")
	}
	if err := run([]string{"-meters", "0"}, &out); err == nil {
		t.Fatal("zero meters should error")
	}
}
