package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"symmeter/internal/server"
	"symmeter/internal/storage"
)

// TestServeEndToEnd runs the whole binary in-process: a real listener on
// 127.0.0.1:0, two concurrent meters, and the printed reconstruction
// summary.
func TestServeEndToEnd(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-meters", "2", "-shards", "4", "-seconds", "600", "-window", "60",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"server listening on 127.0.0.1:",
		"(4 shards)",
		"fleet: 2 meters",
		"symbols/sec)",
		"compressed-domain",
		"query: fleet mean",
		"netquery: fleet mean",
		"matches in-process",
		"bytes in",
		"session errors: 0",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if n := strings.Count(got, "raw -> "); n != 2 {
		t.Errorf("want 2 per-meter summary lines, got %d:\n%s", n, got)
	}
}

// TestServeHistogramAndProfiles covers the query-range flags, the fleet
// histogram, and the pprof plumbing in one end-to-end run.
func TestServeHistogramAndProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.out"), filepath.Join(dir, "mem.out")
	var out bytes.Buffer
	// The two training days precede the streamed day, so live timestamps
	// start at 2·86400 = 172800.
	err := run([]string{
		"-meters", "1", "-shards", "2", "-seconds", "600", "-window", "60",
		"-hist", "-qfrom", "172800", "-qto", "173100",
		"-cpuprofile", cpu, "-memprofile", mem,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "query: histogram (level 4):") {
		t.Errorf("output missing histogram line:\n%s", got)
	}
	// The generator simulates missing windows, so the exact count varies;
	// the range must be echoed and must cover at least one point.
	if !strings.Contains(got, "over [172800,173100)") || strings.Contains(got, "— 0 points") {
		t.Errorf("query over [172800,173100) should report its range and cover points:\n%s", got)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err %v)", p, err)
		}
	}
}

// TestServeQueryListener runs the fleet with a dedicated query-only
// listener and a finite idle timeout: the wire demo must answer through the
// second listener and still match the in-process engine.
func TestServeQueryListener(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-meters", "2", "-shards", "4", "-seconds", "600", "-window", "60",
		"-query-addr", "127.0.0.1:0", "-idle-timeout", "5s", "-query-conc", "2",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"query listener on 127.0.0.1:",
		"netquery: fleet mean",
		"matches in-process",
		"session errors: 0",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestServeBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-meters", "not-a-number"}, &out); err == nil {
		t.Fatal("bad flag value should error")
	}
	if err := run([]string{"-meters", "0"}, &out); err == nil {
		t.Fatal("zero meters should error")
	}
}

// TestServePersistenceRoundTrip runs the fleet twice against one data
// directory: the first run persists through the WAL + segment engine, the
// second must recover that history before serving and end with strictly
// more stored symbols than a cold run produces.
func TestServePersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	args := []string{
		"-meters", "2", "-shards", "4", "-seconds", "600", "-window", "60",
		"-data-dir", dir, "-fsync", "off",
	}
	var first bytes.Buffer
	if err := run(args, &first); err != nil {
		t.Fatalf("first run: %v\n%s", err, first.String())
	}
	got := first.String()
	for _, want := range []string{
		"storage: " + dir,
		"recovered 0 meters",
		"storage: flushed; on disk:",
		"session errors: 0",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("first run missing %q:\n%s", want, got)
		}
	}

	var second bytes.Buffer
	if err := run(args, &second); err != nil {
		t.Fatalf("second run: %v\n%s", err, second.String())
	}
	got = second.String()
	if !strings.Contains(got, "recovered 2 meters") {
		t.Errorf("second run should recover both meters:\n%s", got)
	}
	if strings.Contains(got, "recovered 2 meters — 0 points from 0 segments, 0 replayed") {
		t.Errorf("second run recovered no data:\n%s", got)
	}
	// Two identical runs on one directory: the second serves both days, so
	// its fleet query covers twice the points. Cheap proxy: the stored
	// symbol total printed by run 2 exceeds run 1's.
	if c1, c2 := storedSymbols(t, first.String()), storedSymbols(t, second.String()); c2 <= c1 {
		t.Errorf("second run stored %d symbols, first %d — recovery added nothing", c2, c1)
	}
}

// storedSymbols extracts N from "… -> N symbols in …" on the fleet line.
func storedSymbols(t *testing.T, out string) int {
	t.Helper()
	_, rest, ok := strings.Cut(out, "raw measurements -> ")
	if !ok {
		t.Fatalf("no fleet line in output:\n%s", out)
	}
	numStr, _, ok := strings.Cut(rest, " symbols in ")
	if !ok {
		t.Fatalf("unparseable fleet line:\n%s", out)
	}
	n, err := strconv.Atoi(numStr)
	if err != nil {
		t.Fatalf("fleet symbol count %q: %v", numStr, err)
	}
	return n
}

// TestServeBadFsyncMode rejects unknown -fsync values up front.
func TestServeBadFsyncMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-data-dir", t.TempDir(), "-fsync", "sometimes"}, &out); err == nil {
		t.Fatal("unknown fsync mode should error")
	}
}

// TestShutdownFlushes covers the signal path's drain + flush helper: the
// storage engine must be flushed cleanly and the next open must see the
// flushed segments rather than replaying everything.
func TestShutdownFlushes(t *testing.T) {
	dir := t.TempDir()
	eng, err := storage.Open(storage.Options{Dir: dir, Shards: 2, Sync: storage.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	svc := server.New(server.Config{Shards: 2, Store: eng.Store()})
	svc.SetIngest(eng)
	if _, err := svc.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := shutdown(svc, eng, &out); err != nil {
		t.Fatalf("shutdown: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"robustness:", "storage flushed cleanly", "shutdown complete"} {
		if !strings.Contains(got, want) {
			t.Errorf("shutdown output missing %q:\n%s", want, got)
		}
	}
}
