package main

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"symmeter/internal/faultfs"
	"symmeter/internal/metrics"
	"symmeter/internal/server"
	"symmeter/internal/storage"
	"symmeter/internal/symbolic"
)

// scrape GETs path off the telemetry mux and returns status + body.
func scrape(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestTelemetryMuxLive drives real fleet traffic through an instrumented
// service and scrapes the assembled telemetry surface: /metrics must carry
// the ingest counters and P²-backed latency quantiles the traffic produced,
// /healthz answers 200 for an in-memory run, and the pprof index serves.
func TestTelemetryMuxLive(t *testing.T) {
	reg := metrics.New()
	svc := server.New(server.Config{Shards: 4, Metrics: reg})
	bound, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	rep, err := server.RunFleet(bound.String(), server.FleetConfig{
		Meters: 2, Days: 1, SecondsPerDay: 600, Window: 60, K: 16, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var connected int64
	for _, m := range rep.Meters {
		if m.Connected {
			connected++
		}
	}
	if !svc.AwaitSessions(connected, 10*time.Second) {
		t.Fatal("sessions did not finish")
	}

	srv := httptest.NewServer(telemetryMux(reg, nil))
	defer srv.Close()

	code, body := scrape(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"symmeter_ingest_sessions_total 2",
		"symmeter_ingest_symbols_total ",
		"symmeter_net_bytes_in_total ",
		"symmeter_transport_frames_total{dir=\"in\",type=\"S\"}",
		"symmeter_ingest_batch_seconds{quantile=\"0.5\"}",
		"symmeter_ingest_batch_seconds{quantile=\"0.99\"}",
		"symmeter_ingest_batch_hist_seconds_bucket{le=\"+Inf\"}",
		"symmeter_ingest_inflight_bytes{shard=\"0\"} 0",
		"symmeter_draining 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The quantiles must be real measurements, not the zero estimator.
	st := svc.Stats()
	if st.Symbols == 0 {
		t.Fatal("fleet committed no symbols")
	}
	if strings.Contains(body, "symmeter_ingest_batch_seconds_count 0") {
		t.Errorf("latency recorder saw no batches:\n%s", body)
	}

	code, body = scrape(t, srv, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok: in-memory") {
		t.Errorf("/healthz = %d %q, want 200 ok: in-memory", code, body)
	}
	code, body = scrape(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d, body missing profile index", code)
	}
}

// TestHealthzDegraded flips a faultfs-backed engine to Degraded and watches
// /healthz go 200 → 503 (with the degradation reason) → 200 after the disk
// recovers and the probe heals the engine.
func TestHealthzDegraded(t *testing.T) {
	ffs := faultfs.New()
	reg := metrics.New()
	eng, err := storage.Open(storage.Options{
		Dir: t.TempDir(), Shards: 2, Sync: storage.SyncOff,
		FS: ffs, ProbeInterval: 2 * time.Millisecond, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	srv := httptest.NewServer(telemetryMux(reg, eng))
	defer srv.Close()

	if code, body := scrape(t, srv, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthy engine: /healthz = %d %q", code, body)
	}

	vals := make([]float64, 256)
	for i := range vals {
		vals[i] = float64(i)
	}
	table, err := symbolic.Learn(symbolic.MethodMedian, vals, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.StartSession(1); err != nil {
		t.Fatal(err)
	}
	if err := eng.PushTable(1, table); err != nil {
		t.Fatal(err)
	}
	// The disk dies: WAL writes fail and the probe cannot sync, so the
	// engine degrades and stays degraded.
	ffs.SetFaults(
		faultfs.Fault{Op: faultfs.OpWrite, Path: ".wal", Sticky: true},
		faultfs.Fault{Op: faultfs.OpSync, Path: ".probe", Sticky: true},
	)
	pts := []symbolic.SymbolPoint{{T: 0, S: table.Encode(1)}}
	if _, err := eng.Append(1, pts); !errors.Is(err, server.ErrDegraded) {
		t.Fatalf("append on dead disk: %v, want ErrDegraded", err)
	}
	code, body := scrape(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded engine: /healthz = %d %q, want 503", code, body)
	}
	if !strings.Contains(body, "degraded") || !strings.Contains(body, "wal append") {
		t.Errorf("/healthz body %q should carry the state and reason", body)
	}
	// The health-state gauge on /metrics must agree with /healthz.
	if _, mbody := scrape(t, srv, "/metrics"); !strings.Contains(mbody, "symmeter_storage_health_state 1") {
		t.Errorf("/metrics health gauge should read 1 while degraded")
	}

	// Disk recovers: the probe heals the engine and /healthz flips back.
	ffs.SetFaults()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code, _ := scrape(t, srv, "/healthz"); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("engine never healed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, mbody := scrape(t, srv, "/metrics"); !strings.Contains(mbody, "symmeter_storage_heals_total 1") {
		t.Errorf("/metrics should count the heal")
	}
}

// TestServeMetricsFlag wires -metrics-addr through the whole binary: the run
// must bind the telemetry listener, print its address, and finish cleanly
// with the listener torn down.
func TestServeMetricsFlag(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-meters", "2", "-shards", "4", "-seconds", "600", "-window", "60",
		"-metrics-addr", "127.0.0.1:0",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"telemetry on http://127.0.0.1:",
		"session errors: 0",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
