// Command serve demonstrates the §2 deployment story at fleet scale over
// real TCP on localhost: a concurrent aggregation server listens with a
// sharded in-memory store, M simulated smart meters connect in parallel,
// each handshakes with its meter ID, learns a lookup table from two days of
// history, streams days of symbols (15-minute vertical segmentation by
// default), and the server reconstructs approximate consumption per meter
// and prints a summary — per-meter MAE, total symbols/sec, bytes on wire.
//
//	serve                        # 4 meters, 16 shards, 1 day each
//	serve -meters 64 -shards 32 -days 3
//	serve -meters 2 -seconds 3600    # only the first hour of each day
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"symmeter/internal/server"
	"symmeter/internal/symbolic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:0", "listen address")
		meters  = fs.Int("meters", 4, "number of concurrent simulated meters")
		shards  = fs.Int("shards", 16, "store shard count")
		days    = fs.Int("days", 1, "days of live data each meter streams after its 2 training days")
		seconds = fs.Int64("seconds", 0, "cap each day to its first N seconds (0 = whole day)")
		seed    = fs.Int64("seed", 1, "dataset seed (meter i uses seed+i)")
		k       = fs.Int("k", 16, "alphabet size")
		window  = fs.Int64("window", 900, "vertical window seconds")
		relearn = fs.Bool("relearn", false, "rebuild and resend each meter's table daily (adaptive path)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	fleetCfg := server.FleetConfig{
		Meters:        *meters,
		Days:          *days,
		SecondsPerDay: *seconds,
		Window:        *window,
		K:             *k,
		Seed:          *seed,
		RelearnPerDay: *relearn,
	}
	// Each meter will stream one symbol per window; reserving that capacity
	// at handshake keeps the per-batch store commits allocation-free.
	svc := server.New(server.Config{
		Shards:        *shards,
		ReservePoints: fleetCfg.ExpectedPointsPerMeter(),
	})
	bound, err := svc.Listen(*addr)
	if err != nil {
		return err
	}
	defer svc.Close()
	fmt.Fprintf(out, "server listening on %s (%d shards)\n", bound, svc.Store().NumShards())

	start := time.Now()
	rep, err := server.RunFleet(bound.String(), fleetCfg)
	if err != nil {
		return err
	}
	// Every meter whose dial succeeded produced a server-side session (even
	// one that failed mid-stream), and a just-closed connection may still be
	// un-accepted in the listener backlog — wait for all of them before
	// closing the listener so no stream is dropped.
	var connected int64
	for _, m := range rep.Meters {
		if m.Connected {
			connected++
		}
	}
	if !svc.AwaitSessions(connected, 30*time.Second) {
		fmt.Fprintf(out, "warning: timed out waiting for %d sessions to finish; results may be incomplete\n", connected)
	}
	svc.Drain()
	elapsed := time.Since(start)
	rep.Evaluate(svc.Store())

	const maxLines = 16
	for i, m := range rep.Meters {
		if i == maxLines && len(rep.Meters) > maxLines+1 {
			fmt.Fprintf(out, "  ... %d more meters\n", len(rep.Meters)-maxLines)
			break
		}
		if m.Err != nil {
			fmt.Fprintf(out, "  meter %4d: FAILED: %v\n", m.MeterID, m.Err)
			continue
		}
		fmt.Fprintf(out, "  meter %4d: %d raw -> %d symbols, MAE %.1f W\n",
			m.MeterID, m.Sent, m.Symbols, m.MAE)
	}

	st := svc.Stats()
	rate := float64(st.Symbols) / elapsed.Seconds()
	fmt.Fprintf(out, "fleet: %d meters sent %d raw measurements -> %d symbols in %v (%.0f symbols/sec)\n",
		len(rep.Meters), rep.Sent, st.Symbols, elapsed.Round(time.Millisecond), rate)
	fmt.Fprintf(out, "wire: %d bytes in (tables + symbols + framing); raw would be %d bytes\n",
		st.BytesIn, symbolic.RawSize(rep.Sent))
	if errs := svc.SessionErrors(); len(errs) > 0 {
		fmt.Fprintf(out, "session errors: %d (first: %v)\n", len(errs), errs[0])
		return fmt.Errorf("%d of %d sessions failed", len(errs), len(rep.Meters))
	}
	fmt.Fprintln(out, "session errors: 0")
	return nil
}
