// Command serve demonstrates the §2 deployment story over a real TCP
// connection on localhost: an aggregation server listens, a simulated smart
// meter connects, learns its lookup table from two days of history, streams
// a day of symbols (with 15-minute vertical segmentation), and the server
// reconstructs approximate consumption and prints a summary.
//
//	serve            # run both ends over 127.0.0.1
//	serve -addr :7070 -days 3
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"symmeter/internal/dataset"
	"symmeter/internal/symbolic"
	"symmeter/internal/transport"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:0", "listen address")
		seed   = flag.Int64("seed", 1, "dataset seed")
		days   = flag.Int("days", 1, "days of live data to stream after the 2 training days")
		k      = flag.Int("k", 16, "alphabet size")
		window = flag.Int64("window", 900, "vertical window seconds")
	)
	flag.Parse()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	defer ln.Close()
	fmt.Printf("server listening on %s\n", ln.Addr())

	serverDone := make(chan error, 1)
	var server *transport.Server
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			serverDone <- err
			return
		}
		defer conn.Close()
		server = transport.NewServer(conn)
		serverDone <- server.ReadAll()
	}()

	// Sensor side.
	gen := dataset.New(dataset.Config{Seed: *seed, Houses: 1, Days: 2 + *days})
	var builder symbolic.TableBuilder
	builder.PushSeries(gen.HouseDay(0, 0))
	builder.PushSeries(gen.HouseDay(0, 1))
	table, err := builder.Build(symbolic.MethodMedian, *k)
	if err != nil {
		fail(err)
	}

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		fail(err)
	}
	sensor, err := transport.NewSensor(conn, table, *window, 96)
	if err != nil {
		fail(err)
	}
	sent := 0
	for d := 2; d < 2+*days; d++ {
		day := gen.HouseDay(0, d)
		for _, p := range day.Points {
			if err := sensor.Push(p); err != nil {
				fail(err)
			}
			sent++
		}
	}
	if err := sensor.Close(); err != nil {
		fail(err)
	}
	conn.Close()

	if err := <-serverDone; err != nil {
		fail(err)
	}
	recon, err := server.Reconstruct()
	if err != nil {
		fail(err)
	}
	fmt.Printf("sensor: %d raw measurements -> %d symbols over TCP\n", sent, len(server.Points))
	fmt.Printf("server: received %d table(s); reconstructed series spans [%d, %d]\n",
		len(server.Tables), recon.Start(), recon.End())
	st := recon.Summary()
	fmt.Printf("server view: mean %.1f W, min %.1f W, max %.1f W\n", st.Mean, st.Min, st.Max)
	fmt.Printf("bytes on the wire: ~%d for the table + ~%d for symbols (raw would be %d)\n",
		symbolic.TableWireSize(*k),
		symbolic.PackedSize(len(server.Points), table.Level())+5*(len(server.Points)/96+1),
		symbolic.RawSize(sent))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "serve:", err)
	os.Exit(1)
}
