// Command serve demonstrates the §2 deployment story at fleet scale over
// real TCP on localhost: a concurrent aggregation server listens with a
// sharded packed block store, M simulated smart meters connect in parallel,
// each handshakes with its meter ID, learns a lookup table from two days of
// history, streams days of symbols (15-minute vertical segmentation by
// default), and the server answers fleet-wide aggregates directly in the
// compressed domain — count, mean, min, max and (optionally) the symbol
// histogram over a queried time range — alongside the per-meter MAE
// reconstruction check.
//
// With -data-dir the store is durable: every batch hits a per-shard WAL
// before it commits, sealed blocks spill into mmapped segment files, and a
// restart recovers the whole fleet's history before serving — so the query
// line at the end aggregates recovered + fresh data together. SIGINT and
// SIGTERM drain in-flight sessions and flush storage instead of dying
// mid-frame; a flush failure exits non-zero.
//
//	serve                        # 4 meters, 16 shards, 1 day each
//	serve -meters 64 -shards 32 -days 3
//	serve -meters 2 -seconds 3600    # only the first hour of each day
//	serve -hist -qfrom 172800 -qto 216000  # histogram of the live day's first 12 hours
//	                                       # (stored data starts after the 2 training days)
//	serve -data-dir /var/lib/symmeter -fsync group   # durable ingest + recovery
//	serve -cpuprofile cpu.out        # profile ingest + query
//	serve -query-addr 127.0.0.1:7700 # dedicated query-only listener
//	serve -idle-timeout 30s          # reap silent connections after 30s
//
// The listener also answers remote queries: a connection whose first frame
// is a query request ('Q') is dispatched to the compressed-domain engine
// instead of the ingest path, with at most -query-conc queries executing
// per connection. -query-addr adds a second, query-only listener (ingest
// handshakes are refused there). After the fleet run the binary asks its
// own fleet aggregate once more through pkg/client over TCP and checks it
// against the in-process answer — the wire demo of the §2 story.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"symmeter/internal/metrics"
	"symmeter/internal/profiling"
	"symmeter/internal/query"
	"symmeter/internal/server"
	"symmeter/internal/storage"
	"symmeter/internal/symbolic"
	"symmeter/pkg/client"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:0", "listen address")
		meters      = fs.Int("meters", 4, "number of concurrent simulated meters")
		shards      = fs.Int("shards", 16, "store shard count")
		days        = fs.Int("days", 1, "days of live data each meter streams after its 2 training days")
		seconds     = fs.Int64("seconds", 0, "cap each day to its first N seconds (0 = whole day)")
		seed        = fs.Int64("seed", 1, "dataset seed (meter i uses seed+i)")
		k           = fs.Int("k", 16, "alphabet size")
		window      = fs.Int64("window", 900, "vertical window seconds")
		relearn     = fs.Bool("relearn", false, "rebuild and resend each meter's table daily (adaptive path)")
		qfrom       = fs.Int64("qfrom", 0, "query range start (seconds since the stream epoch)")
		qto         = fs.Int64("qto", 0, "query range end, exclusive (0 = unbounded)")
		qworkers    = fs.Int("qworkers", 0, "fleet-query worker pool size (0 = GOMAXPROCS)")
		hist        = fs.Bool("hist", false, "also print the fleet-wide symbol histogram for the query range")
		queryAddr   = fs.String("query-addr", "", "additional query-only listen address (queries are always served on -addr too)")
		idleTO      = fs.Duration("idle-timeout", 2*time.Minute, "reap connections silent past this; 0 disables")
		writeTO     = fs.Duration("write-timeout", 0, "fail server response writes blocked past this (0 = 30s default, negative disables)")
		budget      = fs.Int64("ingest-budget", 0, "per-shard in-flight ingest byte budget; over-budget batches get a typed retryable refusal (0 = unlimited)")
		queryConc   = fs.Int("query-conc", 0, "max concurrently executing queries per connection (0 = default)")
		metricsAddr = fs.String("metrics-addr", "", "telemetry HTTP listen address (/metrics, /healthz, /debug/pprof); empty disables")
		dataDir     = fs.String("data-dir", "", "durable storage directory (WAL + segments); empty = in-memory only")
		fsyncMode   = fs.String("fsync", "group", "WAL durability with -data-dir: off, group or always")
		cpuprofile  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		return err
	}
	defer stopCPU()
	// A missing profile must fail the command, like cmd/bench's.
	defer func() {
		if werr := profiling.WriteHeap(*memprofile); werr != nil && err == nil {
			err = werr
		}
	}()

	fleetCfg := server.FleetConfig{
		Meters:        *meters,
		Days:          *days,
		SecondsPerDay: *seconds,
		Window:        *window,
		K:             *k,
		Seed:          *seed,
		RelearnPerDay: *relearn,
	}
	// One registry backs everything this process records — the engine's WAL
	// recorders and health gauges, the service's session counters and latency
	// quantiles — and is what -metrics-addr exposes.
	reg := metrics.New()
	// With -data-dir, recover the store from disk and interpose the WAL +
	// segment engine between the sessions and the store.
	var eng *storage.Engine
	var recovered *server.Store
	if *dataDir != "" {
		mode, err := storage.ParseSyncMode(*fsyncMode)
		if err != nil {
			return err
		}
		eng, err = storage.Open(storage.Options{Dir: *dataDir, Shards: *shards, Sync: mode, Metrics: reg})
		if err != nil {
			return err
		}
		// Close is idempotent: the happy path and the signal path close
		// explicitly (and report errors); this backstop covers every early
		// error return so no run leaves the syncer goroutine, the segment
		// mappings, or an unflushed open segment behind.
		defer eng.Close()
		recovered = eng.Store()
		rs := eng.Recovery()
		fmt.Fprintf(out, "storage: %s (fsync=%s): recovered %d meters — %d points from %d segments, %d replayed from %d WAL records (%d torn tails truncated)\n",
			*dataDir, eng.Sync(), rs.Meters, rs.SegmentPoints, rs.Segments, rs.ReplayedPoints, rs.WALRecords, rs.TornTails)
	}
	// Each meter will stream one symbol per window; reserving that capacity
	// at handshake keeps the per-batch store commits allocation-free.
	svc := server.New(server.Config{
		Shards:           *shards,
		ReservePoints:    fleetCfg.ExpectedPointsPerMeter(),
		Store:            recovered,
		IdleTimeout:      *idleTO,
		WriteTimeout:     *writeTO,
		IngestBudget:     *budget,
		QueryConcurrency: *queryConc,
		Metrics:          reg,
	})
	if eng != nil {
		svc.SetIngest(eng)
	}
	// The compressed-domain engine answers both the summary printed below and
	// any remote query connection; registering it before Listen means the
	// first accepted stream can already be a query.
	qe := query.New(svc.Store())
	if *qworkers > 0 {
		qe.SetWorkers(*qworkers)
	}
	svc.SetQueryHandler(qe)
	bound, err := svc.Listen(*addr)
	if err != nil {
		return err
	}
	defer svc.Close()
	fmt.Fprintf(out, "server listening on %s (%d shards)\n", bound, svc.Store().NumShards())
	qbound := bound
	if *queryAddr != "" {
		qb, err := svc.ListenQuery(*queryAddr)
		if err != nil {
			return err
		}
		qbound = qb
		fmt.Fprintf(out, "query listener on %s\n", qb)
	}
	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("telemetry listen: %w", err)
		}
		msrv := &http.Server{Handler: telemetryMux(reg, eng)}
		go msrv.Serve(mln)
		defer msrv.Close()
		fmt.Fprintf(out, "telemetry on http://%s/metrics\n", mln.Addr())
	}

	// SIGINT/SIGTERM drain cleanly — finish reading what connected sensors
	// already sent, flush storage — instead of dying mid-frame.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	start := time.Now()
	fleetDone := make(chan *server.FleetReport, 1)
	fleetErr := make(chan error, 1)
	go func() {
		rep, err := server.RunFleet(bound.String(), fleetCfg)
		if err != nil {
			fleetErr <- err
			return
		}
		fleetDone <- rep
	}()
	var rep *server.FleetReport
	select {
	case rep = <-fleetDone:
	case err := <-fleetErr:
		return err
	case sig := <-sigCh:
		fmt.Fprintf(out, "received %v: draining sessions and flushing storage\n", sig)
		return shutdown(svc, eng, out)
	}
	// Every meter whose dial succeeded produced a server-side session (even
	// one that failed mid-stream), and a just-closed connection may still be
	// un-accepted in the listener backlog — wait for all of them before
	// closing the listener so no stream is dropped.
	var connected int64
	for _, m := range rep.Meters {
		if m.Connected {
			connected++
		}
	}
	if !svc.AwaitSessions(connected, 30*time.Second) {
		fmt.Fprintf(out, "warning: timed out waiting for %d sessions to finish; results may be incomplete\n", connected)
	}
	elapsed := time.Since(start)
	t0, t1 := *qfrom, *qto
	if t1 <= 0 {
		// Unbounded: only a point at exactly MaxInt64 is unreachable by a
		// half-open range, so this matches the stored total.
		t1 = math.MaxInt64
	}
	// Every ingest session has finished, so the store is complete: ask the
	// fleet aggregate through the wire now, while the listeners are still up
	// — pkg/client speaks the 'Q'/'R' frame protocol to the listener the
	// meters used (or the dedicated -query-addr one), and Drain below would
	// otherwise wait on the open query session.
	wc, err := client.Dial(qbound.String())
	if err != nil {
		return fmt.Errorf("wire query dial: %w", err)
	}
	wstart := time.Now()
	wagg, werr := wc.FleetAggregate(t0, t1)
	welapsed := time.Since(wstart)
	wc.Close()
	if werr != nil {
		return fmt.Errorf("wire query: %w", werr)
	}
	svc.Drain()
	rep.Evaluate(svc.Store())

	const maxLines = 16
	for i, m := range rep.Meters {
		if i == maxLines && len(rep.Meters) > maxLines+1 {
			fmt.Fprintf(out, "  ... %d more meters\n", len(rep.Meters)-maxLines)
			break
		}
		if m.Err != nil {
			fmt.Fprintf(out, "  meter %4d: FAILED: %v\n", m.MeterID, m.Err)
			continue
		}
		fmt.Fprintf(out, "  meter %4d: %d raw -> %d symbols, MAE %.1f W\n",
			m.MeterID, m.Sent, m.Symbols, m.MAE)
	}

	// The fleet summary is answered by the compressed-domain query engine —
	// block summaries plus LUT edge kernels over the RCU-published sealed
	// indexes, a bounded worker pool over the shards — not by reconstructing
	// streams, and (for sealed data) without taking any shard lock.
	qstart := time.Now()
	agg := qe.FleetAggregate(t0, t1)
	qelapsed := time.Since(qstart)
	// The ingest total is always the full stored count — the -qfrom/-qto
	// window restricts only the query line below.
	stored := svc.Store().TotalSymbols()

	rate := float64(stored) / elapsed.Seconds()
	fmt.Fprintf(out, "fleet: %d meters sent %d raw measurements -> %d symbols in %v (%.0f symbols/sec)\n",
		len(rep.Meters), rep.Sent, stored, elapsed.Round(time.Millisecond), rate)
	if agg.Count > 0 {
		fmt.Fprintf(out, "query: fleet mean %.1f W, min %.1f W, max %.1f W over [%d,%d) — %d points in %v, compressed-domain, %d workers, %d tail-fold locks\n",
			agg.Mean(), agg.Min, agg.Max, t0, t1, agg.Count, qelapsed.Round(time.Microsecond),
			qe.Workers(), svc.Store().QueryLockAcquisitions())
	} else {
		fmt.Fprintf(out, "query: no points in [%d,%d) (%v, compressed-domain)\n", t0, t1, qelapsed.Round(time.Microsecond))
	}
	if *hist {
		h, err := qe.FleetHistogram(t0, t1)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "query: histogram (level %d): %v\n", h.Level, h.Counts)
	}

	// The wire answer from before the drain must agree with the in-process
	// engine on the identical frozen store.
	if wagg.Count != agg.Count {
		return fmt.Errorf("wire query saw %d points, in-process saw %d", wagg.Count, agg.Count)
	}
	fmt.Fprintf(out, "netquery: fleet mean %.1f W over %d points via pkg/client in %v — matches in-process\n",
		wagg.Mean(), wagg.Count, welapsed.Round(time.Microsecond))

	st := svc.Stats()
	fmt.Fprintf(out, "wire: %d bytes in (tables + symbols + framing); raw would be %d bytes\n",
		st.BytesIn, symbolic.RawSize(rep.Sent))
	printRobustness(out, st)
	if eng != nil {
		printHealth(out, eng, st.DegradedSessions)
		// All queries above are done; flushing finishes the open segments
		// and makes the next start recover from footers instead of replay.
		if err := eng.Close(); err != nil {
			return fmt.Errorf("storage flush: %w", err)
		}
		walBytes, segBytes, derr := eng.DiskUsage()
		if derr == nil {
			fmt.Fprintf(out, "storage: flushed; on disk: %d WAL bytes, %d segment bytes\n", walBytes, segBytes)
		}
	}
	if errs := svc.SessionErrors(); len(errs) > 0 {
		fmt.Fprintf(out, "session errors: %d (first: %v)\n", len(errs), errs[0])
		return fmt.Errorf("%d of %d sessions failed", len(errs), len(rep.Meters))
	}
	fmt.Fprintln(out, "session errors: 0")
	return nil
}

// telemetryMux assembles the -metrics-addr HTTP surface: /metrics in
// Prometheus text format off the process-wide registry, /healthz mirroring
// the storage health machine (200 while Healthy, 503 while Degraded or
// Recovering — a load balancer should stop routing ingest at a degraded
// node, which serves queries only), and the live pprof handlers. A purely
// in-memory run (no -data-dir) has no durability to lose, so its /healthz is
// always 200.
func telemetryMux(reg *metrics.Registry, eng *storage.Engine) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(reg))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if eng == nil {
			fmt.Fprintln(w, "ok: in-memory")
			return
		}
		h := eng.Health()
		if h.State == storage.StateHealthy {
			fmt.Fprintf(w, "ok: %s\n", h.State)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		if h.Reason != "" {
			fmt.Fprintf(w, "unavailable: %s (%s)\n", h.State, h.Reason)
		} else {
			fmt.Fprintf(w, "unavailable: %s\n", h.State)
		}
	})
	profiling.AttachPprof(mux)
	return mux
}

// printHealth reports the engine's health state and fault counters — the
// operator's view of degraded-mode behavior: "healthy" with all-zero
// counters on a good disk, otherwise the state, its cause, and how many
// sessions were refused with VerdictDegraded.
func printHealth(out io.Writer, eng *storage.Engine, degradedSessions int64) {
	h := eng.Health()
	line := fmt.Sprintf("storage health: %s", h.State)
	if h.Reason != "" {
		line += fmt.Sprintf(" (%s)", h.Reason)
	}
	if h.SpillDisabled {
		line += " [spill disabled: sealed blocks heap-resident]"
	}
	fmt.Fprintf(out, "%s — wal-gen %d, faults: %d wal writes, %d fsyncs, %d spill fallbacks, %d manifest retries, %d manifest failures; %d probes, %d heals, %d degraded sessions\n",
		line, h.WALGen, h.WALWriteFailures, h.FsyncFailures, h.SpillFallbacks,
		h.ManifestRetries, h.ManifestFailures, h.Probes, h.Heals, degradedSessions)
}

// printRobustness reports the ingest-robustness counters — the operator's
// view of how hard the admission and exactly-once machinery worked: typed
// overload/drain refusals, sequenced reconnect replays, duplicates the
// sequence numbers suppressed, and slow consumers the write deadline reaped.
func printRobustness(out io.Writer, st server.Stats) {
	fmt.Fprintf(out, "robustness: %d sequenced sessions, %d reconnect replays, %d duplicate batches suppressed, %d overload refusals, %d drain refusals, %d write-deadline reaps\n",
		st.SequencedSessions, st.ReconnectReplays, st.DuplicateBatches,
		st.OverloadRefusals, st.DrainRefusals, st.WriteDeadlineReaps)
}

// shutdown is the signal path: stop admitting sessions (new ingest and query
// connections get the typed retryable VerdictDraining, so clients back off
// and redial elsewhere), give in-flight sessions a moment to finish reading
// what their peers already sent, then cut connections and flush the storage
// engine. A flush failure is the one thing that must exit non-zero — it
// means acknowledged data may need the WAL replayed on the next start.
func shutdown(svc *server.Service, eng *storage.Engine, out io.Writer) error {
	svc.BeginDrain()
	if !svc.AwaitSessions(svc.Stats().Sessions, 5*time.Second) {
		fmt.Fprintln(out, "warning: sessions still active after drain timeout; closing them")
	}
	svc.Close()
	// One snapshot after the drain settles, shared by every line below —
	// separate Stats() calls here could disagree with each other while the
	// reaped sessions' final counter updates land.
	st := svc.Stats()
	printRobustness(out, st)
	if eng != nil {
		printHealth(out, eng, st.DegradedSessions)
		if err := eng.Close(); err != nil {
			return fmt.Errorf("storage flush on shutdown: %w", err)
		}
		fmt.Fprintln(out, "storage flushed cleanly")
	}
	fmt.Fprintln(out, "shutdown complete")
	return nil
}
