package client_test

import (
	"errors"
	"math"
	"sync"
	"testing"

	"symmeter/internal/benchref"
	"symmeter/internal/query"
	"symmeter/internal/server"
	"symmeter/pkg/client"
)

// The test fixture: one shared store + service + engine for every test and
// the fuzz target. 8 meters × 700 windows of the k=16 bench fixture shape.
const (
	fixtureMeters = 8
	fixturePoints = 700
	fixtureWindow = 900
	fixtureEnd    = fixturePoints * fixtureWindow
)

var fixture struct {
	once sync.Once
	eng  *query.Engine
	addr string
	err  error
}

// startFixture builds the shared store and serves it on an ephemeral port.
// The service lives for the whole test process: individual tests share the
// listener and open their own client connections.
func startFixture(t testing.TB) (string, *query.Engine) {
	t.Helper()
	fixture.once.Do(func() {
		st, err := benchref.MakeQueryStore(fixtureMeters, fixturePoints)
		if err != nil {
			fixture.err = err
			return
		}
		svc := server.New(server.Config{Store: st})
		svc.SetQueryHandler(query.New(st))
		addr, err := svc.Listen("127.0.0.1:0")
		if err != nil {
			fixture.err = err
			return
		}
		fixture.eng = query.New(st)
		fixture.addr = addr.String()
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
	return fixture.addr, fixture.eng
}

func dialFixture(t testing.TB) (*client.Client, *query.Engine) {
	t.Helper()
	addr, eng := startFixture(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, eng
}

// bitsEqual compares floats as IEEE-754 bit patterns — the protocol's
// promise for per-meter results.
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// approxEqual tolerates the reassociation of fleet partial merges, whose
// worker order is scheduling-dependent on both sides of the wire.
func approxEqual(a, b float64) bool {
	if bitsEqual(a, b) {
		return true
	}
	diff := math.Abs(a - b)
	return diff <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// TestClientMatchesEngineMeterOps checks every per-meter op against the
// in-process engine, bit-exact, across full, partial and empty windows.
func TestClientMatchesEngineMeterOps(t *testing.T) {
	c, eng := dialFixture(t)
	windows := [][2]int64{
		{0, fixtureEnd}, // full coverage
		{100 * fixtureWindow, 600*fixtureWindow + 450}, // cuts inside blocks
		{3 * fixtureWindow, 4 * fixtureWindow},         // single window
		{fixtureEnd + 1000, fixtureEnd + 2000},         // valid but empty
	}
	for _, w := range windows {
		t0, t1 := w[0], w[1]
		for id := uint64(1); id <= fixtureMeters; id++ {
			wantN, _ := eng.Count(id, t0, t1)
			gotN, err := c.Count(id, t0, t1)
			if err != nil || gotN != wantN {
				t.Fatalf("Count(%d, %d, %d) = %d, %v; want %d", id, t0, t1, gotN, err, wantN)
			}

			wantSum, _ := eng.Sum(id, t0, t1)
			gotSum, gotSumN, err := c.Sum(id, t0, t1)
			if err != nil || !bitsEqual(gotSum, wantSum) || gotSumN != wantN {
				t.Fatalf("Sum(%d, %d, %d) = %v/%d, %v; want %v/%d", id, t0, t1, gotSum, gotSumN, err, wantSum, wantN)
			}

			wantMean, _ := eng.Mean(id, t0, t1)
			gotMean, err := c.Mean(id, t0, t1)
			if err != nil || !bitsEqual(gotMean, wantMean) {
				t.Fatalf("Mean(%d, %d, %d) = %v, %v; want %v", id, t0, t1, gotMean, err, wantMean)
			}

			wantMin, wantMinOK := eng.Min(id, t0, t1)
			gotMin, gotMinOK, err := c.Min(id, t0, t1)
			if err != nil || gotMinOK != wantMinOK || (wantMinOK && !bitsEqual(gotMin, wantMin)) {
				t.Fatalf("Min(%d, %d, %d) = %v/%v, %v; want %v/%v", id, t0, t1, gotMin, gotMinOK, err, wantMin, wantMinOK)
			}
			wantMax, wantMaxOK := eng.Max(id, t0, t1)
			gotMax, gotMaxOK, err := c.Max(id, t0, t1)
			if err != nil || gotMaxOK != wantMaxOK || (wantMaxOK && !bitsEqual(gotMax, wantMax)) {
				t.Fatalf("Max(%d, %d, %d) = %v/%v, %v; want %v/%v", id, t0, t1, gotMax, gotMaxOK, err, wantMax, wantMaxOK)
			}

			wantAgg, _ := eng.Aggregate(id, t0, t1)
			gotAgg, err := c.Aggregate(id, t0, t1)
			if err != nil || gotAgg.Count != wantAgg.Count || !bitsEqual(gotAgg.Sum, wantAgg.Sum) ||
				!bitsEqual(gotAgg.Min, wantAgg.Min) || !bitsEqual(gotAgg.Max, wantAgg.Max) {
				t.Fatalf("Aggregate(%d, %d, %d) = %+v, %v; want %+v", id, t0, t1, gotAgg, err, wantAgg)
			}

			wantH, _, herr := eng.Histogram(id, t0, t1)
			if herr != nil {
				t.Fatal(herr)
			}
			gotH, err := c.Histogram(id, t0, t1)
			if err != nil || gotH.Level != wantH.Level || len(gotH.Counts) != len(wantH.Counts) {
				t.Fatalf("Histogram(%d, %d, %d) = %+v, %v; want %+v", id, t0, t1, gotH, err, wantH)
			}
			for s := range gotH.Counts {
				if gotH.Counts[s] != wantH.Counts[s] {
					t.Fatalf("Histogram(%d) bin %d = %d, want %d", id, s, gotH.Counts[s], wantH.Counts[s])
				}
			}
		}
	}
}

// TestClientMatchesEngineFleetOps checks fleet-wide ops: integer aggregates
// (counts, histogram bins) bit-identical, float merges within reassociation
// tolerance.
func TestClientMatchesEngineFleetOps(t *testing.T) {
	c, eng := dialFixture(t)
	windows := [][2]int64{
		{0, fixtureEnd},
		{100 * fixtureWindow, 600*fixtureWindow + 450},
		{fixtureEnd + 1000, fixtureEnd + 2000},
	}
	for _, w := range windows {
		t0, t1 := w[0], w[1]

		wantSum, wantN := eng.FleetSum(t0, t1)
		gotN, err := c.FleetCount(t0, t1)
		if err != nil || gotN != wantN {
			t.Fatalf("FleetCount(%d, %d) = %d, %v; want %d", t0, t1, gotN, err, wantN)
		}
		gotSum, gotSumN, err := c.FleetSum(t0, t1)
		if err != nil || gotSumN != wantN || !approxEqual(gotSum, wantSum) {
			t.Fatalf("FleetSum(%d, %d) = %v/%d, %v; want %v/%d", t0, t1, gotSum, gotSumN, err, wantSum, wantN)
		}

		wantAgg := eng.FleetAggregate(t0, t1)
		gotAgg, err := c.FleetAggregate(t0, t1)
		if err != nil || gotAgg.Count != wantAgg.Count ||
			!approxEqual(gotAgg.Sum, wantAgg.Sum) ||
			!bitsEqual(gotAgg.Min, wantAgg.Min) || !bitsEqual(gotAgg.Max, wantAgg.Max) {
			t.Fatalf("FleetAggregate(%d, %d) = %+v, %v; want %+v", t0, t1, gotAgg, err, wantAgg)
		}

		wantH, herr := eng.FleetHistogram(t0, t1)
		if herr != nil {
			t.Fatal(herr)
		}
		gotH, err := c.FleetHistogram(t0, t1)
		if err != nil || gotH.Level != wantH.Level || len(gotH.Counts) != len(wantH.Counts) {
			t.Fatalf("FleetHistogram(%d, %d) = %+v, %v; want %+v", t0, t1, gotH, err, wantH)
		}
		for s := range gotH.Counts {
			if gotH.Counts[s] != wantH.Counts[s] {
				t.Fatalf("FleetHistogram bin %d = %d, want %d", s, gotH.Counts[s], wantH.Counts[s])
			}
		}
	}
}

// TestClientTypedErrors checks the server's verdict errors surface through
// errors.Is and do NOT poison the connection.
func TestClientTypedErrors(t *testing.T) {
	c, _ := dialFixture(t)

	if _, err := c.Count(9999, 0, fixtureEnd); !errors.Is(err, client.ErrUnknownMeter) {
		t.Fatalf("unknown meter: %v", err)
	}
	if _, _, err := c.Sum(1, 500, 500); !errors.Is(err, client.ErrBadRange) {
		t.Fatalf("empty range: %v", err)
	}
	if _, _, err := c.FleetSum(10, 5); !errors.Is(err, client.ErrBadRange) {
		t.Fatalf("inverted range: %v", err)
	}
	if _, err := c.Histogram(8888, 0, fixtureEnd); !errors.Is(err, client.ErrUnknownMeter) {
		t.Fatalf("unknown meter histogram: %v", err)
	}

	// The stream stayed framed across all four verdicts: a normal query
	// still answers.
	n, err := c.Count(1, 0, fixtureEnd)
	if err != nil || n != fixturePoints {
		t.Fatalf("query after verdict errors: %d, %v; want %d", n, err, fixturePoints)
	}
}

// TestClientAggMean checks the client-side Agg helper matches the wire Mean.
func TestClientAggMean(t *testing.T) {
	c, _ := dialFixture(t)
	agg, err := c.Aggregate(2, 0, fixtureEnd)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := c.Mean(2, 0, fixtureEnd)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(agg.Mean(), mean) {
		t.Fatalf("Agg.Mean %v != wire Mean %v", agg.Mean(), mean)
	}
	var empty client.Agg
	if !math.IsNaN(empty.Mean()) {
		t.Fatal("empty Agg.Mean not NaN")
	}
}

// TestClientSteadyStateZeroAlloc pins the whole round trip — request
// encode, server-side execute + response encode, client-side decode — at
// zero allocations per query in steady state. Runs over real TCP with the
// server in-process, so a single allocation on either side of the meter-op
// path fails the test.
func TestClientSteadyStateZeroAlloc(t *testing.T) {
	c, _ := dialFixture(t)
	t0, t1 := int64(100*fixtureWindow), int64(600*fixtureWindow+450)
	var h client.Histogram
	// Warm every reusable buffer: client request buf, server worker
	// result/encode buf, client decode bins, caller bins.
	if _, err := c.Aggregate(1, t0, t1); err != nil {
		t.Fatal(err)
	}
	if err := c.HistogramInto(&h, 1, t0, t1); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := c.Aggregate(1, t0, t1); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Sum(1, t0, t1); err != nil {
			t.Fatal(err)
		}
		if err := c.HistogramInto(&h, 1, t0, t1); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("steady-state query round trip allocates %v per run, want 0", n)
	}
}

// TestClientClosePoisons checks a closed client fails fast instead of
// writing to a dead connection.
func TestClientClosePoisons(t *testing.T) {
	addr, _ := startFixture(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Count(1, 0, 10); err == nil {
		t.Fatal("query on closed client succeeded")
	}
}
