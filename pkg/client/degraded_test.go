package client_test

import (
	"errors"
	"math"
	"testing"
	"time"

	"symmeter/internal/faultfs"
	"symmeter/internal/query"
	"symmeter/internal/server"
	"symmeter/internal/storage"
	"symmeter/internal/symbolic"
	"symmeter/pkg/client"
)

// degradedTable learns the shared k=16 table for the degraded-mode fixture.
func degradedTable(t *testing.T) *symbolic.Table {
	t.Helper()
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = float64(i * 7919 % 4000)
	}
	table, err := symbolic.Learn(symbolic.MethodMedian, vals, 16)
	if err != nil {
		t.Fatal(err)
	}
	return table
}

// degradedSymbols is batch idx of the meter's stream: 96 symbols at a
// 15-minute cadence starting at firstT(idx).
func degradedSymbols(meterID uint64, idx int, table *symbolic.Table) []symbolic.Symbol {
	syms := make([]symbolic.Symbol, 96)
	for j := range syms {
		v := float64((int(meterID)*31 + idx*97 + j*13) % 4000)
		syms[j] = table.Encode(v)
	}
	return syms
}

func degradedFirstT(idx int) int64 { return int64(idx) * 96 * 900 }

// TestIngestDegradedEndToEnd is the acceptance round trip: a server whose
// data directory stops being writable keeps answering remote queries,
// refuses remote ingest with the typed client.ErrDegraded, and resumes
// durable ingest automatically once the directory is writable again — all
// through pkg/client over real TCP, with the result surviving a crash.
func TestIngestDegradedEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New()
	eng, err := storage.Open(storage.Options{
		Dir: dir, Shards: 4, Sync: storage.SyncOff, SegmentBytes: 64 << 10,
		FS: ffs, ProbeInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := server.New(server.Config{Store: eng.Store()})
	svc.SetIngest(eng)
	svc.SetQueryHandler(query.New(eng.Store()))
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	table := degradedTable(t)
	const meter = 42

	// Phase 1: healthy durable ingest through the client library.
	ing, err := client.DialIngest(addr.String(), meter)
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.PushTable(table); err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < 5; idx++ {
		if err := ing.Append(degradedFirstT(idx), 900, degradedSymbols(meter, idx, table)); err != nil {
			t.Fatalf("healthy append %d: %v", idx, err)
		}
	}
	if err := ing.Close(); err != nil {
		t.Fatalf("healthy session close: %v", err)
	}

	qc, err := client.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	base, err := qc.Aggregate(meter, 0, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	if base.Count != 5*96 {
		t.Fatalf("baseline count %d, want %d", base.Count, 5*96)
	}

	// Phase 2: the data directory dies. Remote ingest must come back as the
	// typed ErrDegraded; remote queries on the SAME server keep answering,
	// bit-identical to before.
	ffs.SetFaults(
		faultfs.Fault{Op: faultfs.OpWrite, Path: ".wal", Sticky: true},
		faultfs.Fault{Op: faultfs.OpSync, Path: ".probe", Sticky: true},
	)
	tryIngest := func() error {
		s, err := client.DialIngest(addr.String(), meter)
		if err != nil {
			return err
		}
		// Each session re-announces its table (the stream protocol decodes
		// symbols against it); while degraded this is the first refused write.
		if err := s.PushTable(table); err != nil {
			s.Close()
			return err
		}
		if err := s.Append(degradedFirstT(5), 900, degradedSymbols(meter, 5, table)); err != nil {
			s.Close()
			return err
		}
		return s.Close()
	}
	err = tryIngest()
	if !errors.Is(err, client.ErrDegraded) {
		t.Fatalf("ingest on dead disk: got %v, want client.ErrDegraded", err)
	}
	// A second attempt is refused up front (the engine is now degraded) and
	// still reports the typed verdict through the wire.
	if err := tryIngest(); !errors.Is(err, client.ErrDegraded) {
		t.Fatalf("ingest while degraded: got %v, want client.ErrDegraded", err)
	}
	if n := svc.Stats().DegradedSessions; n == 0 {
		t.Error("server stats did not count the degraded sessions")
	}
	agg, err := qc.Aggregate(meter, 0, math.MaxInt64)
	if err != nil {
		t.Fatalf("query while degraded: %v", err)
	}
	if agg.Count != base.Count ||
		math.Float64bits(agg.Sum) != math.Float64bits(base.Sum) ||
		math.Float64bits(agg.Min) != math.Float64bits(base.Min) ||
		math.Float64bits(agg.Max) != math.Float64bits(base.Max) {
		t.Fatalf("degraded query drifted: %+v vs baseline %+v", agg, base)
	}

	// Phase 3: the disk comes back. The client's backoff retry rides out the
	// probe interval and lands the batch durably, no operator involved.
	ffs.SetFaults()
	retry := client.Backoff{Min: 5 * time.Millisecond, Max: 50 * time.Millisecond, Attempts: 200}
	if err := retry.Retry(tryIngest); err != nil {
		t.Fatalf("retry after disk recovery: %v", err)
	}
	after, err := qc.Aggregate(meter, 0, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	if after.Count != 6*96 {
		t.Fatalf("count after resumed ingest: %d, want %d", after.Count, 6*96)
	}
	h := eng.Health()
	if h.State != storage.StateHealthy || h.Heals == 0 || h.WALGen == 0 {
		t.Fatalf("engine did not heal onto a fresh generation: %+v", h)
	}

	// Phase 4: "durable" was not a lie — crash the engine and recover
	// everything acked, including the post-heal batch on the new generation.
	qc.Close()
	svc.Close()
	eng.Abandon()
	re, err := storage.Open(storage.Options{
		Dir: dir, Shards: 4, Sync: storage.SyncOff, SegmentBytes: 64 << 10, FS: ffs,
	})
	if err != nil {
		t.Fatalf("recovery after degraded round trip: %v", err)
	}
	defer re.Close()
	rq := query.New(re.Store())
	got, ok := rq.Aggregate(meter, 0, math.MaxInt64)
	if !ok || got.Count != after.Count ||
		math.Float64bits(got.Sum) != math.Float64bits(after.Sum) ||
		math.Float64bits(got.Min) != math.Float64bits(after.Min) ||
		math.Float64bits(got.Max) != math.Float64bits(after.Max) {
		t.Fatalf("recovered aggregate %+v (ok=%v), want %+v", got, ok, after)
	}
}

// TestBackoffStopsOnOtherErrors pins Backoff.Retry's contract: only the
// typed retryable refusals — degraded, overloaded, draining, busy — are
// worth waiting out; any other error — and success — returns immediately.
// Raw transport errors must NOT retry: without a sequenced Session the
// caller cannot know whether the server committed the write.
func TestBackoffStopsOnOtherErrors(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	err := client.Backoff{Min: time.Millisecond, Attempts: 10}.Retry(func() error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("non-retryable error: %v after %d calls, want boom after 1", err, calls)
	}
	for _, sentinel := range []error{
		client.ErrDegraded, client.ErrOverloaded, client.ErrDraining, client.ErrMeterBusy,
	} {
		calls = 0
		err = client.Backoff{Min: time.Millisecond, Attempts: 10}.Retry(func() error {
			calls++
			if calls < 3 {
				return sentinel
			}
			return nil
		})
		if err != nil || calls != 3 {
			t.Fatalf("%v-then-success: %v after %d calls, want nil after 3", sentinel, err, calls)
		}
	}
	calls = 0
	err = client.Backoff{Min: time.Millisecond, Attempts: 4}.Retry(func() error {
		calls++
		return client.ErrDegraded
	})
	if !errors.Is(err, client.ErrDegraded) || calls != 4 {
		t.Fatalf("exhausted attempts: %v after %d calls, want ErrDegraded after 4", err, calls)
	}
	if !client.Retryable(client.ErrOverloaded) || client.Retryable(boom) || client.Retryable(nil) {
		t.Fatal("Retryable predicate drifted from the Backoff contract")
	}
}
