package client

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"time"

	"symmeter/internal/symbolic"
	"symmeter/internal/transport"
)

// SessionConfig tunes a Session's retry and reconnect behavior. The zero
// value is usable: TCP dialing, Backoff defaults, a 10s ack timeout.
type SessionConfig struct {
	// Backoff paces reconnect attempts and per-batch retryable refusals,
	// and bounds the total attempts one operation may consume.
	Backoff Backoff
	// AckTimeout bounds the wait for each server ack. An ack that does not
	// arrive in time is indistinguishable from a lost one, so the session
	// reconnects and lets the handshake's high-water mark disambiguate.
	AckTimeout time.Duration
	// Dialer overrides how connections are made (tests inject
	// netfault-wrapped dialers here); nil means net.Dial("tcp", addr).
	Dialer func(addr string) (net.Conn, error)
}

func (c *SessionConfig) ackTimeout() time.Duration {
	if c.AckTimeout <= 0 {
		return 10 * time.Second
	}
	return c.AckTimeout
}

// Session is an exactly-once ingest session: the sequenced, acknowledged,
// auto-reconnecting counterpart of Ingestor. Every PushTable and Append is
// assigned the meter's next sequence number, sent, and held until the
// server's ack for that seq arrives; a transport failure or ack timeout
// tears the connection down, redials under the backoff policy, learns the
// server's committed high-water mark from the handshake reply, and either
// drops the in-flight batch (the server had committed it — the ack was
// lost) or replays it under the same seq (the server dedupes, so a retry
// can never double-commit). A typed retryable refusal — degraded,
// overloaded — keeps the connection and resends the same seq after a
// jittered delay.
//
// When an operation returns nil the batch is durably committed exactly
// once. When it returns an error, the batch is NOT committed (and the
// session is closed): either the error is a non-retryable server verdict,
// or the backoff budget ran out — in both cases the caller knows exactly
// where the stream stopped via Seq.
//
// Like Ingestor, a Session is single-goroutine.
type Session struct {
	addr    string
	meterID uint64
	cfg     SessionConfig

	conn net.Conn
	bw   *bufio.Writer
	fr   *transport.FrameReader

	// seq is the last sequence number assigned; pending holds the one
	// in-flight frame (the protocol is stop-and-wait: a frame is pending
	// from send until its ack, refusal, or reconnect-suppression).
	seq          uint64
	pendingFrame []byte
	buf          []byte

	reconnects  int
	replays     int
	retries     int           // backoff sleeps taken (reconnect waits + refusal re-sends)
	lastBackoff time.Duration // duration of the most recent backoff sleep
	lastErr     error         // most recent transport/refusal cause, for budget-exhausted reporting
	err         error
}

// SessionStats is a point-in-time snapshot of a Session's retry machinery —
// how hard the exactly-once discipline worked to keep the stream alive.
type SessionStats struct {
	// Reconnects counts redials after the initial connect.
	Reconnects int
	// Replays counts in-flight frames resent under their original seq after
	// a reconnect.
	Replays int
	// Retries counts backoff sleeps taken, across reconnect waits and
	// retryable per-batch refusals.
	Retries int
	// LastBackoff is the duration of the most recent backoff sleep (0 if
	// none was ever taken).
	LastBackoff time.Duration
}

// Stats returns the session's retry counters. Sessions are single-goroutine,
// so the snapshot is exact between calls.
func (s *Session) Stats() SessionStats {
	return SessionStats{
		Reconnects:  s.reconnects,
		Replays:     s.replays,
		Retries:     s.retries,
		LastBackoff: s.lastBackoff,
	}
}

// backoffSleep takes one jittered backoff delay for attempt i, recording it
// in the session's retry counters.
func (s *Session) backoffSleep(i int) {
	d := s.cfg.Backoff.delay(i)
	s.retries++
	s.lastBackoff = d
	time.Sleep(d)
}

// errHWMRegressed reports a reconnect handshake whose high-water mark is
// below sequence numbers this session already saw acknowledged — acked data
// vanished (an OS crash under a relaxed fsync mode, or a restored backup).
// Exactly-once cannot be patched over that; the caller must decide.
var errHWMRegressed = errors.New("client: server sequence high-water mark regressed below acknowledged batches")

// DialSession connects, performs the sequenced handshake, and adopts the
// server's committed high-water mark as the session's starting sequence —
// a client process restart continues the meter's stream where the server
// says it stopped.
func DialSession(addr string, meterID uint64, cfg SessionConfig) (*Session, error) {
	s := &Session{addr: addr, meterID: meterID, cfg: cfg}
	hwm, err := s.connectRetry(0)
	if err != nil {
		return nil, err
	}
	s.seq = hwm
	return s, nil
}

// MeterID returns the session's meter.
func (s *Session) MeterID() uint64 { return s.meterID }

// Seq returns the last sequence number assigned (equal to the last
// acknowledged one whenever no call is in flight).
func (s *Session) Seq() uint64 { return s.seq }

// Reconnects returns how many times the session redialed after the initial
// connect; Replays counts in-flight frames resent under their original seq
// after a reconnect.
func (s *Session) Reconnects() int { return s.reconnects }

// Replays — see Reconnects.
func (s *Session) Replays() int { return s.replays }

// dial opens one connection attempt.
func (s *Session) dial() (net.Conn, error) {
	if s.cfg.Dialer != nil {
		return s.cfg.Dialer(s.addr)
	}
	return net.Dial("tcp", s.addr)
}

// connect runs one dial + sequenced handshake, returning the server's
// committed high-water mark from the handshake ack. On any error the
// connection is closed and s.conn stays nil.
func (s *Session) connect() (hwm uint64, err error) {
	conn, err := s.dial()
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(conn)
	fr := transport.NewFrameReader(bufio.NewReader(conn))
	if err := transport.WriteHandshakeFlags(bw, s.meterID, transport.FlagSequenced); err == nil {
		err = bw.Flush()
	}
	if err != nil {
		conn.Close()
		return 0, err
	}
	if err := conn.SetReadDeadline(time.Now().Add(s.cfg.ackTimeout())); err != nil {
		conn.Close()
		return 0, err
	}
	typ, payload, err := fr.Next()
	if err != nil {
		conn.Close()
		return 0, fmt.Errorf("client: reading handshake ack: %w", err)
	}
	switch typ {
	case transport.FrameAck:
		hwm, err = transport.DecodeAck(payload)
		if err != nil {
			conn.Close()
			return 0, err
		}
	case transport.FrameQueryError:
		// The server refused the session with a typed verdict (draining,
		// busy meter, degraded start) — surface it; retryable ones are the
		// reconnect loop's to wait out.
		var res transport.QueryResult
		err = transport.DecodeQueryResponse(typ, payload, &res)
		conn.Close()
		var qe *transport.QueryError
		if errors.As(err, &qe) {
			return 0, qe
		}
		return 0, fmt.Errorf("client: undecodable handshake refusal: %v", err)
	default:
		conn.Close()
		return 0, fmt.Errorf("client: unexpected %#x frame as handshake reply", typ)
	}
	conn.SetReadDeadline(time.Time{})
	s.conn, s.bw, s.fr = conn, bw, fr
	return hwm, nil
}

// connectRetry runs connect under the backoff policy, starting at attempt
// number `spent` (so a commit's refusal retries and its reconnects share
// one budget). It validates the learned high-water mark against the
// session's acknowledged history and suppresses or re-arms the pending
// frame accordingly.
func (s *Session) connectRetry(spent int) (hwm uint64, err error) {
	attempts := s.cfg.Backoff.attempts()
	for i := spent; ; i++ {
		hwm, err = s.connect()
		if err == nil {
			break
		}
		// Non-retryable server verdicts are final; everything else —
		// dial errors, torn handshakes, drain/busy verdicts — is the
		// unreliable network this type exists to ride out.
		var qe *transport.QueryError
		if errors.As(err, &qe) && !Retryable(qe) {
			return 0, qe
		}
		if i >= attempts-1 {
			return 0, err
		}
		s.backoffSleep(i)
	}
	if hwm < s.ackedFloor() {
		s.teardown()
		return 0, fmt.Errorf("%w: mark %d, acknowledged through %d", errHWMRegressed, hwm, s.ackedFloor())
	}
	if s.pendingFrame != nil && hwm >= s.seq {
		// The server committed the in-flight batch before the old
		// connection died; the ack was what got lost. Dropping the frame
		// here is the client half of exactly-once.
		s.settle()
	}
	return hwm, nil
}

// settle retires the pending frame (acked or reconnect-suppressed),
// reclaiming its buffer for the next frame's assembly.
func (s *Session) settle() {
	s.buf = s.pendingFrame[:0]
	s.pendingFrame = nil
}

// ackedFloor is the highest seq this session knows the server acknowledged
// — everything below the pending frame, or everything assigned when
// nothing is pending.
func (s *Session) ackedFloor() uint64 {
	if s.pendingFrame != nil {
		return s.seq - 1
	}
	return s.seq
}

func (s *Session) teardown() {
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
}

// PushTable sends a lookup table under the next sequence number and waits
// for its ack; the first one must precede any batch.
func (s *Session) PushTable(t *symbolic.Table) error {
	if s.err != nil {
		return s.err
	}
	body := symbolic.MarshalTable(t)
	s.seq++
	var hdr [13]byte
	hdr[0] = transport.FrameSeqTable
	binary.BigEndian.PutUint32(hdr[1:5], uint32(8+len(body)))
	binary.BigEndian.PutUint64(hdr[5:13], s.seq)
	s.pendingFrame = append(append(s.buf[:0], hdr[:]...), body...)
	return s.commit()
}

// Append sends one symbol batch — timestamps firstT + i*window, symbols at
// the current table's level — under the next sequence number and waits for
// its ack. A nil return means the batch is durably committed exactly once.
func (s *Session) Append(firstT, window int64, symbols []symbolic.Symbol) error {
	if s.err != nil {
		return s.err
	}
	if len(symbols) == 0 {
		return nil // nothing to make durable; don't spend a seq on it
	}
	s.seq++
	var hdr [29]byte
	hdr[0] = transport.FrameSeqSymbol
	binary.BigEndian.PutUint64(hdr[5:13], s.seq)
	binary.BigEndian.PutUint64(hdr[13:21], uint64(firstT))
	binary.BigEndian.PutUint64(hdr[21:29], uint64(window))
	buf := append(s.buf[:0], hdr[:]...)
	buf, err := symbolic.AppendPack(buf, symbols)
	if err != nil {
		s.seq--
		return err // caller bug (mixed levels); the stream is untouched
	}
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(buf)-5))
	s.pendingFrame = buf
	return s.commit()
}

// commit drives the pending frame to an acknowledged state: send, await
// ack; on a retryable refusal back off and resend; on transport trouble
// reconnect and replay (or learn the frame already committed). The backoff
// policy's attempt budget bounds the whole operation.
func (s *Session) commit() error {
	attempts := s.cfg.Backoff.attempts()
	fresh := true // the current connection has not failed this commit yet
	for i := 0; ; i++ {
		if s.pendingFrame == nil {
			return nil // reconnect handshake revealed it was committed
		}
		if i >= attempts {
			s.teardown()
			s.err = fmt.Errorf("client: seq %d not committed after %d attempts: %w", s.seq, attempts, s.lastErr)
			return s.err
		}
		if s.conn == nil {
			if _, err := s.connectRetry(i); err != nil {
				s.err = err
				return err
			}
			if s.pendingFrame == nil {
				return nil
			}
			s.replays++
			fresh = true
		}
		if err := s.sendPending(); err != nil {
			s.lastErr = err
			s.teardown()
			s.reconnects++
			if !fresh {
				s.backoffSleep(i)
			}
			fresh = false
			continue
		}
		ok, err := s.awaitAck()
		if ok {
			s.settle()
			return nil
		}
		s.lastErr = err
		var qe *transport.QueryError
		if errors.As(err, &qe) {
			if !Retryable(qe) {
				s.teardown()
				s.err = qe
				return qe
			}
			// Refusal: connection healthy, server waiting. Same seq after
			// a jittered delay.
			s.backoffSleep(i)
			continue
		}
		// Transport trouble or timeout: the ack may be lost or late; only
		// a fresh handshake can tell. Reconnect.
		s.teardown()
		s.reconnects++
	}
}

// sendPending writes and flushes the pending frame.
func (s *Session) sendPending() error {
	if _, err := s.bw.Write(s.pendingFrame); err != nil {
		return err
	}
	return s.bw.Flush()
}

// awaitAck reads the server's answer for the pending seq: (true, nil) on
// its ack, (false, *QueryError) on a typed refusal addressed to it, and
// (false, err) for anything that desynchronizes the stream.
func (s *Session) awaitAck() (bool, error) {
	if err := s.conn.SetReadDeadline(time.Now().Add(s.cfg.ackTimeout())); err != nil {
		return false, err
	}
	typ, payload, err := s.fr.Next()
	if err != nil {
		return false, err
	}
	switch typ {
	case transport.FrameAck:
		seq, err := transport.DecodeAck(payload)
		if err != nil {
			return false, err
		}
		if seq != s.seq {
			return false, fmt.Errorf("client: ack for seq %d while %d in flight", seq, s.seq)
		}
		return true, nil
	case transport.FrameQueryError:
		var res transport.QueryResult
		derr := transport.DecodeQueryResponse(typ, payload, &res)
		var qe *transport.QueryError
		if !errors.As(derr, &qe) {
			return false, fmt.Errorf("client: undecodable refusal frame: %v", derr)
		}
		if res.ID != s.seq {
			return false, fmt.Errorf("client: refusal for seq %d while %d in flight", res.ID, s.seq)
		}
		return false, qe
	}
	return false, fmt.Errorf("client: unexpected %#x frame while awaiting ack", typ)
}

// Close ends the stream (best-effort 'E' frame — every batch is already
// individually acknowledged, so there is no verdict to wait for) and
// closes the connection.
func (s *Session) Close() error {
	if s.conn == nil {
		if s.err == nil {
			s.err = errors.New("client: session closed")
		}
		return nil
	}
	s.bw.Write([]byte{transport.FrameEnd, 0, 0, 0, 0})
	s.bw.Flush()
	err := s.conn.Close()
	s.conn = nil
	if s.err == nil {
		s.err = errors.New("client: session closed")
	}
	return err
}
