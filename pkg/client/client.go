// Package client is the Go library for querying a symmeter aggregation
// server over TCP: connect, ask for compressed-domain aggregates (Count,
// Sum, Mean, Min, Max, Aggregate, Histogram) over [t0, t1) — per meter or
// fleet-wide — and get back exactly what the in-process query engine would
// have answered, as raw IEEE-754 bit patterns rather than formatted text.
//
// A Client owns one connection and reuses its request buffer, response
// decoder and histogram bins across calls, so the steady-state query path
// allocates nothing. It is not safe for concurrent use; open one Client per
// goroutine (the server bounds per-connection concurrency anyway, so
// parallel readers want parallel connections).
//
//	c, err := client.Dial(addr)
//	if err != nil { ... }
//	defer c.Close()
//	sum, n, err := c.FleetSum(t0, t1)
package client

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"net"
	"time"

	"symmeter/internal/transport"
)

// Re-exported sentinels for the server's typed query errors, matched with
// errors.Is against any error this package returns.
var (
	// ErrUnknownMeter reports a per-meter query for a meter the server has
	// never seen.
	ErrUnknownMeter = transport.ErrQueryUnknownMeter
	// ErrBadRange reports a query with t0 >= t1.
	ErrBadRange = transport.ErrQueryBadRange
	// ErrMixedLevels reports a histogram over blocks whose symbol levels
	// disagree.
	ErrMixedLevels = transport.ErrQueryMixedLevels
	// ErrLevelTooFine reports a histogram at an impractically fine level.
	ErrLevelTooFine = transport.ErrQueryLevelTooFine
	// ErrDegraded reports the server refusing ingest because its storage
	// is degraded. Nothing about the refused write was stored, so it is
	// safe — and expected — to retry after a backoff (see Backoff.Retry);
	// queries keep working against the same server throughout.
	ErrDegraded = transport.ErrServerDegraded
	// ErrOverloaded reports the server refusing a batch because the shard's
	// ingest memory budget is exhausted. Nothing was stored; retryable.
	ErrOverloaded = transport.ErrServerOverloaded
	// ErrDraining reports a server in graceful shutdown refusing new
	// sessions. Retryable — against the next server instance.
	ErrDraining = transport.ErrServerDraining
	// ErrMeterBusy reports a second session for a meter whose previous
	// session is still registered. Retryable — the idle reaper frees the
	// meter once the stale session times out.
	ErrMeterBusy = transport.ErrMeterBusy
)

// Retryable reports whether err is one of the server's typed
// nothing-was-written refusals (degraded, overloaded, draining, busy) — the
// family Backoff.Retry waits out. Raw transport errors are NOT retryable
// here: without a sequenced Session the client cannot know whether the
// server committed the write before the connection died.
func Retryable(err error) bool { return transport.Retryable(err) }

// Agg is an order-insensitive aggregate over a time range, mirroring the
// engine's: Min and Max are meaningful only when Count > 0.
type Agg struct {
	Count uint64
	Sum   float64
	Min   float64
	Max   float64
}

// Mean returns Sum/Count, or NaN for an empty range.
func (a Agg) Mean() float64 {
	if a.Count == 0 {
		return math.NaN()
	}
	return a.Sum / float64(a.Count)
}

// Histogram is a per-symbol count distribution at a single level; Counts
// has 1<<Level entries, or none when the range covers no points.
type Histogram struct {
	Level  int
	Counts []uint64
}

// Total returns the histogram mass.
func (h *Histogram) Total() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Client is one query connection to an aggregation server. Zero value is
// not usable; construct with Dial or New.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	fr   *transport.FrameReader
	// nextID correlates responses; single-flight use means it simply
	// increments, but the wire protocol allows pipelining.
	nextID uint64
	// buf is the reusable request-frame assembly buffer.
	buf []byte
	// res is the reusable response decode target (its Counts array backs
	// HistogramInto on the steady state).
	res transport.QueryResult
	// timeout, when positive, bounds each request round trip.
	timeout time.Duration
	// err, once set, poisons the client: the stream position can no longer
	// be trusted (torn write, desynchronized response), so every later call
	// fails fast with it. Server-reported query errors are NOT sticky —
	// the stream stays well-framed across them.
	err error
}

// Dial connects to a server's query endpoint (either its main listener or
// a dedicated -query-addr listener).
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return New(conn), nil
}

// New wraps an established connection.
func New(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		bw:   bufio.NewWriter(conn),
		fr:   transport.NewFrameReader(bufio.NewReader(conn)),
	}
}

// SetTimeout bounds each subsequent request's round trip (0 disables). A
// timeout poisons the client — the response may still be in flight, so the
// connection must not be reused.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// Close sends the end-of-stream frame (best effort) and closes the
// connection.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	if c.err == nil {
		c.buf = append(c.buf[:0], 'E', 0, 0, 0, 0)
		c.bw.Write(c.buf)
		c.bw.Flush()
	}
	err := c.conn.Close()
	c.conn = nil
	if c.err == nil {
		c.err = errors.New("client: closed")
	}
	return err
}

// fail poisons the client and returns the sticky error.
func (c *Client) fail(err error) error {
	if c.err == nil {
		c.err = err
	}
	return c.err
}

// do runs one request round trip into c.res. Returned *transport.QueryError
// values are recoverable server verdicts; any other error is sticky.
func (c *Client) do(op byte, fleet bool, meterID uint64, t0, t1 int64) error {
	if c.err != nil {
		return c.err
	}
	c.nextID++
	req := transport.QueryRequest{
		ID:      c.nextID,
		Op:      op,
		Fleet:   fleet,
		MeterID: meterID,
		T0:      t0,
		T1:      t1,
	}
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return c.fail(err)
		}
	}
	c.buf = transport.AppendQueryRequestFrame(c.buf[:0], req)
	if _, err := c.bw.Write(c.buf); err != nil {
		return c.fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return c.fail(err)
	}
	typ, payload, err := c.fr.Next()
	if err != nil {
		return c.fail(fmt.Errorf("client: reading response: %w", err))
	}
	derr := transport.DecodeQueryResponse(typ, payload, &c.res)
	if c.res.ID != req.ID {
		// Single-flight clients see responses strictly in request order; a
		// mismatched id means the stream is desynchronized beyond repair.
		return c.fail(fmt.Errorf("client: response id %d for request %d: stream desynchronized", c.res.ID, req.ID))
	}
	if derr != nil {
		var qe *transport.QueryError
		if errors.As(derr, &qe) {
			return derr // server verdict: recoverable, stream still framed
		}
		return c.fail(derr)
	}
	if c.res.Op != op {
		return c.fail(fmt.Errorf("client: response op %#x for request op %#x", c.res.Op, op))
	}
	return nil
}

// Count returns the number of stored points for the meter in [t0, t1).
func (c *Client) Count(meterID uint64, t0, t1 int64) (uint64, error) {
	if err := c.do(transport.OpCount, false, meterID, t0, t1); err != nil {
		return 0, err
	}
	return c.res.Count, nil
}

// Sum returns the sum of reconstruction values and the point count for the
// meter in [t0, t1).
func (c *Client) Sum(meterID uint64, t0, t1 int64) (float64, uint64, error) {
	if err := c.do(transport.OpSum, false, meterID, t0, t1); err != nil {
		return 0, 0, err
	}
	return c.res.Sum, c.res.Count, nil
}

// Mean returns the mean reconstruction value in [t0, t1); NaN when the
// range holds no points.
func (c *Client) Mean(meterID uint64, t0, t1 int64) (float64, error) {
	if err := c.do(transport.OpMean, false, meterID, t0, t1); err != nil {
		return 0, err
	}
	return c.res.Value, nil
}

// Min returns the smallest reconstruction value in [t0, t1); ok is false
// when the range holds no points.
func (c *Client) Min(meterID uint64, t0, t1 int64) (float64, bool, error) {
	if err := c.do(transport.OpMin, false, meterID, t0, t1); err != nil {
		return 0, false, err
	}
	return c.res.Value, c.res.Count > 0, nil
}

// Max is Min's counterpart.
func (c *Client) Max(meterID uint64, t0, t1 int64) (float64, bool, error) {
	if err := c.do(transport.OpMax, false, meterID, t0, t1); err != nil {
		return 0, false, err
	}
	return c.res.Value, c.res.Count > 0, nil
}

// Aggregate returns count/sum/min/max for the meter in [t0, t1) in one
// round trip.
func (c *Client) Aggregate(meterID uint64, t0, t1 int64) (Agg, error) {
	if err := c.do(transport.OpAggregate, false, meterID, t0, t1); err != nil {
		return Agg{}, err
	}
	return Agg{Count: c.res.Count, Sum: c.res.Sum, Min: c.res.Min, Max: c.res.Max}, nil
}

// HistogramInto fills h with the meter's per-symbol distribution over
// [t0, t1), reusing h.Counts' capacity — the zero-allocation form for
// callers that poll.
func (c *Client) HistogramInto(h *Histogram, meterID uint64, t0, t1 int64) error {
	if err := c.do(transport.OpHistogram, false, meterID, t0, t1); err != nil {
		return err
	}
	return c.copyHistogram(h)
}

// Histogram returns the meter's per-symbol distribution over [t0, t1).
func (c *Client) Histogram(meterID uint64, t0, t1 int64) (Histogram, error) {
	var h Histogram
	err := c.HistogramInto(&h, meterID, t0, t1)
	return h, err
}

// FleetCount returns the fleet-wide point count over [t0, t1).
func (c *Client) FleetCount(t0, t1 int64) (uint64, error) {
	if err := c.do(transport.OpCount, true, 0, t0, t1); err != nil {
		return 0, err
	}
	return c.res.Count, nil
}

// FleetSum returns the fleet-wide sum and point count over [t0, t1).
func (c *Client) FleetSum(t0, t1 int64) (float64, uint64, error) {
	if err := c.do(transport.OpSum, true, 0, t0, t1); err != nil {
		return 0, 0, err
	}
	return c.res.Sum, c.res.Count, nil
}

// FleetMean returns the fleet-wide mean over [t0, t1); NaN when empty.
func (c *Client) FleetMean(t0, t1 int64) (float64, error) {
	if err := c.do(transport.OpMean, true, 0, t0, t1); err != nil {
		return 0, err
	}
	return c.res.Value, nil
}

// FleetAggregate returns fleet-wide count/sum/min/max over [t0, t1).
func (c *Client) FleetAggregate(t0, t1 int64) (Agg, error) {
	if err := c.do(transport.OpAggregate, true, 0, t0, t1); err != nil {
		return Agg{}, err
	}
	return Agg{Count: c.res.Count, Sum: c.res.Sum, Min: c.res.Min, Max: c.res.Max}, nil
}

// FleetHistogramInto fills h with the fleet-wide per-symbol distribution
// over [t0, t1), reusing h.Counts' capacity.
func (c *Client) FleetHistogramInto(h *Histogram, t0, t1 int64) error {
	if err := c.do(transport.OpHistogram, true, 0, t0, t1); err != nil {
		return err
	}
	return c.copyHistogram(h)
}

// FleetHistogram returns the fleet-wide per-symbol distribution.
func (c *Client) FleetHistogram(t0, t1 int64) (Histogram, error) {
	var h Histogram
	err := c.FleetHistogramInto(&h, t0, t1)
	return h, err
}

// copyHistogram moves the decoded bins out of the reusable response into
// the caller's histogram, reusing its capacity.
func (c *Client) copyHistogram(h *Histogram) error {
	h.Level = c.res.Level
	if cap(h.Counts) < len(c.res.Counts) {
		h.Counts = make([]uint64, len(c.res.Counts))
	}
	h.Counts = h.Counts[:len(c.res.Counts)]
	copy(h.Counts, c.res.Counts)
	return nil
}
