package client_test

import (
	"errors"
	"math"
	"sync"
	"testing"

	"symmeter/pkg/client"
)

// fuzzClient is the shared connection for the fuzz target: the protocol's
// verdict errors are recoverable by design, so one connection survives the
// whole corpus — itself part of what's being fuzzed.
var fuzzClient struct {
	once sync.Once
	mu   sync.Mutex
	c    *client.Client
	err  error
}

func getFuzzClient(t testing.TB) *client.Client {
	t.Helper()
	addr, _ := startFixture(t)
	fuzzClient.once.Do(func() {
		fuzzClient.c, fuzzClient.err = client.Dial(addr)
	})
	if fuzzClient.err != nil {
		t.Fatal(fuzzClient.err)
	}
	return fuzzClient.c
}

// FuzzQueryProtocol is the differential fuzz for the wire path: every
// (op, scope, meter, range) combination must answer exactly what the
// in-process engine answers on the same store — integer aggregates
// bit-identical, per-meter floats bit-identical, fleet floats within
// merge-reassociation tolerance — and out-of-contract inputs must come back
// as typed verdicts that leave the connection usable.
func FuzzQueryProtocol(f *testing.F) {
	f.Add(uint8(0), false, uint8(1), int64(0), int64(fixtureEnd))
	f.Add(uint8(1), false, uint8(3), int64(100*fixtureWindow), int64(600*fixtureWindow+450))
	f.Add(uint8(6), true, uint8(0), int64(0), int64(fixtureEnd))
	f.Add(uint8(2), false, uint8(200), int64(0), int64(10))     // unknown meter
	f.Add(uint8(1), true, uint8(0), int64(500), int64(500))     // empty range
	f.Add(uint8(4), false, uint8(2), int64(900), int64(800))    // inverted range
	f.Add(uint8(5), false, uint8(7), int64(-5000), int64(5000)) // negative t0
	f.Add(uint8(6), false, uint8(4), int64(fixtureEnd), int64(fixtureEnd+100))

	f.Fuzz(func(t *testing.T, opSel uint8, fleet bool, meterSel uint8, t0, t1 int64) {
		_, eng := startFixture(t)
		c := getFuzzClient(t)
		fuzzClient.mu.Lock()
		defer fuzzClient.mu.Unlock()

		meterID := uint64(meterSel)
		badRange := t0 >= t1
		_, known := eng.Count(meterID, 0, 1) // meter existence, range-independent

		// checkErr handles the out-of-contract verdicts every op shares;
		// reports whether the result is a verdict (no value to compare).
		checkErr := func(err error) bool {
			if badRange {
				if !errors.Is(err, client.ErrBadRange) {
					t.Fatalf("t0=%d t1=%d: err = %v, want ErrBadRange", t0, t1, err)
				}
				return true
			}
			if !fleet && !known {
				if !errors.Is(err, client.ErrUnknownMeter) {
					t.Fatalf("meter %d: err = %v, want ErrUnknownMeter", meterID, err)
				}
				return true
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			return false
		}

		switch opSel % 7 {
		case 0: // Count
			var gotN uint64
			var err error
			if fleet {
				gotN, err = c.FleetCount(t0, t1)
			} else {
				gotN, err = c.Count(meterID, t0, t1)
			}
			if checkErr(err) {
				return
			}
			var wantN uint64
			if fleet {
				_, wantN = eng.FleetSum(t0, t1)
			} else {
				wantN, _ = eng.Count(meterID, t0, t1)
			}
			if gotN != wantN {
				t.Fatalf("count = %d, want %d", gotN, wantN)
			}
		case 1: // Sum
			if fleet {
				gotSum, gotN, err := c.FleetSum(t0, t1)
				if checkErr(err) {
					return
				}
				wantSum, wantN := eng.FleetSum(t0, t1)
				if gotN != wantN || !approxEqual(gotSum, wantSum) {
					t.Fatalf("fleet sum = %v/%d, want %v/%d", gotSum, gotN, wantSum, wantN)
				}
			} else {
				gotSum, gotN, err := c.Sum(meterID, t0, t1)
				if checkErr(err) {
					return
				}
				wantSum, _ := eng.Sum(meterID, t0, t1)
				wantN, _ := eng.Count(meterID, t0, t1)
				if gotN != wantN || !bitsEqual(gotSum, wantSum) {
					t.Fatalf("sum = %v/%d, want %v/%d", gotSum, gotN, wantSum, wantN)
				}
			}
		case 2: // Mean
			if fleet {
				gotMean, err := c.FleetMean(t0, t1)
				if checkErr(err) {
					return
				}
				wantSum, wantN := eng.FleetSum(t0, t1)
				wantMean := math.NaN()
				if wantN > 0 {
					wantMean = wantSum / float64(wantN)
				}
				if math.IsNaN(wantMean) != math.IsNaN(gotMean) ||
					(!math.IsNaN(wantMean) && !approxEqual(gotMean, wantMean)) {
					t.Fatalf("fleet mean = %v, want %v", gotMean, wantMean)
				}
			} else {
				gotMean, err := c.Mean(meterID, t0, t1)
				if checkErr(err) {
					return
				}
				wantMean, _ := eng.Mean(meterID, t0, t1)
				if !bitsEqual(gotMean, wantMean) {
					t.Fatalf("mean = %v, want %v", gotMean, wantMean)
				}
			}
		case 3: // Min
			if fleet {
				gotAgg, err := c.FleetAggregate(t0, t1)
				if checkErr(err) {
					return
				}
				wantAgg := eng.FleetAggregate(t0, t1)
				if gotAgg.Count != wantAgg.Count || (wantAgg.Count > 0 && !bitsEqual(gotAgg.Min, wantAgg.Min)) {
					t.Fatalf("fleet min = %+v, want %+v", gotAgg, wantAgg)
				}
			} else {
				gotMin, gotOK, err := c.Min(meterID, t0, t1)
				if checkErr(err) {
					return
				}
				wantMin, wantOK := eng.Min(meterID, t0, t1)
				if gotOK != wantOK || (wantOK && !bitsEqual(gotMin, wantMin)) {
					t.Fatalf("min = %v/%v, want %v/%v", gotMin, gotOK, wantMin, wantOK)
				}
			}
		case 4: // Max
			gotMax, gotOK, err := c.Max(meterID, t0, t1)
			if fleet {
				gotAgg, aerr := c.FleetAggregate(t0, t1)
				if checkErr(aerr) {
					return
				}
				wantAgg := eng.FleetAggregate(t0, t1)
				if gotAgg.Count != wantAgg.Count || (wantAgg.Count > 0 && !bitsEqual(gotAgg.Max, wantAgg.Max)) {
					t.Fatalf("fleet max = %+v, want %+v", gotAgg, wantAgg)
				}
				return
			}
			if checkErr(err) {
				return
			}
			wantMax, wantOK := eng.Max(meterID, t0, t1)
			if gotOK != wantOK || (wantOK && !bitsEqual(gotMax, wantMax)) {
				t.Fatalf("max = %v/%v, want %v/%v", gotMax, gotOK, wantMax, wantOK)
			}
		case 5: // Aggregate
			if fleet {
				gotAgg, err := c.FleetAggregate(t0, t1)
				if checkErr(err) {
					return
				}
				wantAgg := eng.FleetAggregate(t0, t1)
				if gotAgg.Count != wantAgg.Count || !approxEqual(gotAgg.Sum, wantAgg.Sum) ||
					(wantAgg.Count > 0 && (!bitsEqual(gotAgg.Min, wantAgg.Min) || !bitsEqual(gotAgg.Max, wantAgg.Max))) {
					t.Fatalf("fleet agg = %+v, want %+v", gotAgg, wantAgg)
				}
			} else {
				gotAgg, err := c.Aggregate(meterID, t0, t1)
				if checkErr(err) {
					return
				}
				wantAgg, _ := eng.Aggregate(meterID, t0, t1)
				if gotAgg.Count != wantAgg.Count || !bitsEqual(gotAgg.Sum, wantAgg.Sum) ||
					!bitsEqual(gotAgg.Min, wantAgg.Min) || !bitsEqual(gotAgg.Max, wantAgg.Max) {
					t.Fatalf("agg = %+v, want %+v", gotAgg, wantAgg)
				}
			}
		case 6: // Histogram
			var gotH client.Histogram
			var err error
			if fleet {
				err = c.FleetHistogramInto(&gotH, t0, t1)
			} else {
				err = c.HistogramInto(&gotH, meterID, t0, t1)
			}
			if checkErr(err) {
				return
			}
			var wantLevel int
			var wantCounts []uint64
			if fleet {
				wantH, herr := eng.FleetHistogram(t0, t1)
				if herr != nil {
					t.Fatalf("engine fleet histogram: %v", herr)
				}
				wantLevel, wantCounts = wantH.Level, wantH.Counts
			} else {
				wantH, _, herr := eng.Histogram(meterID, t0, t1)
				if herr != nil {
					t.Fatalf("engine histogram: %v", herr)
				}
				wantLevel, wantCounts = wantH.Level, wantH.Counts
			}
			if gotH.Level != wantLevel || len(gotH.Counts) != len(wantCounts) {
				t.Fatalf("histogram = %d/%d bins, want %d/%d", gotH.Level, len(gotH.Counts), wantLevel, len(wantCounts))
			}
			for s := range gotH.Counts {
				if gotH.Counts[s] != wantCounts[s] {
					t.Fatalf("bin %d = %d, want %d", s, gotH.Counts[s], wantCounts[s])
				}
			}
		}
	})
}
