package client_test

import (
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"symmeter/internal/netfault"
	"symmeter/internal/query"
	"symmeter/internal/server"
	"symmeter/internal/storage"
	"symmeter/internal/symbolic"
	"symmeter/pkg/client"
)

// chaosBackoff is the tight retry policy the chaos tests run Sessions under:
// enough attempts to ride out every scheduled fault, short enough that a
// wedged path fails the test instead of stalling it.
var chaosBackoff = client.Backoff{Min: time.Millisecond, Max: 20 * time.Millisecond, Attempts: 100}

// durableServer starts a WAL-backed engine + service on a loopback port.
func durableServer(t *testing.T) (*server.Service, *storage.Engine, string) {
	t.Helper()
	eng, err := storage.Open(storage.Options{
		Dir: t.TempDir(), Shards: 4, Sync: storage.SyncOff, SegmentBytes: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := server.New(server.Config{Store: eng.Store()})
	svc.SetIngest(eng)
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		svc.Close()
		eng.Close()
	})
	return svc, eng, addr.String()
}

// requireExactlyOnce proves store holds batches 0..nBatches-1 of meterID
// exactly once, bit-identical to an in-memory oracle fed the same stream —
// the chaos invariant: nothing acked lost, nothing committed twice.
func requireExactlyOnce(t *testing.T, store *server.Store, meterID uint64, table *symbolic.Table, nBatches int) {
	t.Helper()
	oracle := server.NewStore(4)
	if err := oracle.StartSession(meterID); err != nil {
		t.Fatal(err)
	}
	if err := oracle.PushTable(meterID, table); err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < nBatches; idx++ {
		syms := degradedSymbols(meterID, idx, table)
		pts := make([]symbolic.SymbolPoint, len(syms))
		for j, s := range syms {
			pts[j] = symbolic.SymbolPoint{T: degradedFirstT(idx) + int64(j)*900, S: s}
		}
		if _, err := oracle.Append(meterID, pts); err != nil {
			t.Fatal(err)
		}
	}
	got := query.New(store)
	want := query.New(oracle)
	ga, gok := got.Aggregate(meterID, 0, math.MaxInt64)
	wa, wok := want.Aggregate(meterID, 0, math.MaxInt64)
	if gok != wok || ga.Count != wa.Count ||
		math.Float64bits(ga.Sum) != math.Float64bits(wa.Sum) ||
		math.Float64bits(ga.Min) != math.Float64bits(wa.Min) ||
		math.Float64bits(ga.Max) != math.Float64bits(wa.Max) {
		t.Fatalf("store diverged from acked oracle: got %+v (ok=%v), want %+v (ok=%v)", ga, gok, wa, wok)
	}
	var gh, wh query.Histogram
	if _, err := got.HistogramInto(&gh, meterID, 0, math.MaxInt64); err != nil {
		t.Fatal(err)
	}
	if _, err := want.HistogramInto(&wh, meterID, 0, math.MaxInt64); err != nil {
		t.Fatal(err)
	}
	for s := range wh.Counts {
		if gh.Counts[s] != wh.Counts[s] {
			t.Fatalf("symbol %d: store %d, oracle %d — duplicate or lost batch", s, gh.Counts[s], wh.Counts[s])
		}
	}
}

// sessionRun pushes the table and nBatches batches through a Session dialed
// via inj, requiring every operation to commit (the backoff budget must
// absorb the whole schedule).
func sessionRun(t *testing.T, addr string, inj *netfault.Injector, meterID uint64, table *symbolic.Table, nBatches int) *client.Session {
	t.Helper()
	s, err := client.DialSession(addr, meterID, client.SessionConfig{
		Backoff:    chaosBackoff,
		AckTimeout: 250 * time.Millisecond,
		Dialer:     inj.Dial,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := s.PushTable(table); err != nil {
		t.Fatalf("push table: %v", err)
	}
	for idx := 0; idx < nBatches; idx++ {
		if err := s.Append(degradedFirstT(idx), 900, degradedSymbols(meterID, idx, table)); err != nil {
			t.Fatalf("append %d: %v", idx, err)
		}
	}
	s.Close()
	return s
}

// TestSessionExactlyOnceUnderNetFaults is the chaos matrix: one schedule per
// failure class the ingest path must ride out — resets at frame boundaries
// and mid-frame, torn writes, black holes in both directions, latency
// spikes, transient dial-side errors. Under every schedule each Append
// returns nil and the durable store matches the acked oracle bit-exactly.
func TestSessionExactlyOnceUnderNetFaults(t *testing.T) {
	const meter, batches = 42, 8
	schedules := []struct {
		name   string
		faults []netfault.Fault
	}{
		{"reset-after-handshake", []netfault.Fault{
			{Op: netfault.OpWrite, AfterBytes: 12, Action: netfault.Reset}}},
		{"reset-mid-table", []netfault.Fault{
			{Op: netfault.OpWrite, AfterBytes: 40, Action: netfault.Reset}}},
		{"reset-mid-batch", []netfault.Fault{
			{Op: netfault.OpWrite, AfterBytes: 600, Action: netfault.Reset}}},
		{"short-write-mid-batch", []netfault.Fault{
			{Op: netfault.OpWrite, AfterBytes: 700, Action: netfault.ShortWrite}}},
		{"black-holed-acks", []netfault.Fault{
			{Op: netfault.OpRead, N: 3, Action: netfault.BlackHole}}},
		{"black-holed-writes", []netfault.Fault{
			{Op: netfault.OpWrite, AfterBytes: 900, Action: netfault.BlackHole}}},
		{"latency-spike", []netfault.Fault{
			{Op: netfault.OpWrite, N: 3, Action: netfault.Delay, Delay: 30 * time.Millisecond}}},
		{"read-reset", []netfault.Fault{
			{Op: netfault.OpRead, N: 2, Action: netfault.Reset}}},
		{"transient-write-error", []netfault.Fault{
			{Op: netfault.OpWrite, N: 2, Action: netfault.Error}}},
		{"repeated-resets", []netfault.Fault{
			{Op: netfault.OpWrite, N: 2, Action: netfault.Reset},
			{Op: netfault.OpRead, N: 5, Action: netfault.Reset},
			{Op: netfault.OpWrite, N: 9, Action: netfault.Reset}}},
	}
	for _, sc := range schedules {
		t.Run(sc.name, func(t *testing.T) {
			_, eng, addr := durableServer(t)
			inj := netfault.New(sc.faults...)
			table := degradedTable(t)
			sessionRun(t, addr, inj, meter, table, batches)
			if n := inj.Remaining(); n != 0 {
				t.Fatalf("%d scheduled faults never fired — the schedule did not exercise the wire", n)
			}
			requireExactlyOnce(t, eng.Store(), meter, table, batches)
			if got := eng.LastSeq(meter); got != batches+1 {
				t.Fatalf("high-water mark %d, want %d", got, batches+1)
			}
		})
	}
}

// TestSessionSuppressesCommittedInFlight pins the client half of
// exactly-once: the server commits a batch but its ack is black-holed; the
// reconnect handshake's high-water mark proves the commit, so the client
// retires the in-flight frame WITHOUT resending — no replay, no duplicate.
func TestSessionSuppressesCommittedInFlight(t *testing.T) {
	svc, eng, addr := durableServer(t)
	// Reads on conn 1: handshake ack (1), table ack (2), then the batch ack
	// is swallowed.
	inj := netfault.New(netfault.Fault{Op: netfault.OpRead, N: 3, Action: netfault.BlackHole})
	table := degradedTable(t)
	s := sessionRun(t, addr, inj, 7, table, 1)
	if s.Reconnects() != 1 || s.Replays() != 0 {
		t.Fatalf("reconnects=%d replays=%d, want 1 reconnect and 0 replays (ack lost, commit proven by handshake)", s.Reconnects(), s.Replays())
	}
	requireExactlyOnce(t, eng.Store(), 7, table, 1)
	if n := svc.Stats().DuplicateBatches; n != 0 {
		t.Fatalf("server suppressed %d duplicates — the client resent a committed seq", n)
	}
}

// TestSessionReplaysUncommittedInFlight pins the other arm: the connection
// dies before the batch reaches the server, the reconnect handshake's mark
// is below the in-flight seq, and the client replays it under the same seq.
func TestSessionReplaysUncommittedInFlight(t *testing.T) {
	_, eng, addr := durableServer(t)
	// Writes: handshake (1), table (2), then the first batch write is reset
	// before any byte arrives.
	inj := netfault.New(netfault.Fault{Op: netfault.OpWrite, N: 3, Action: netfault.Reset})
	table := degradedTable(t)
	s := sessionRun(t, addr, inj, 9, table, 1)
	if s.Reconnects() != 1 || s.Replays() != 1 {
		t.Fatalf("reconnects=%d replays=%d, want 1 and 1 (batch never committed, must replay)", s.Reconnects(), s.Replays())
	}
	requireExactlyOnce(t, eng.Store(), 9, table, 1)
}

// TestSessionKillNineExactlyOnce is the end-to-end crash drill: the server —
// a child process on a SyncAlways engine — is SIGKILLed twice mid-stream and
// restarted over the same directory; the client Session rides through both
// via reconnect + sequence replay. Afterwards the recovered directory must
// hold every acknowledged batch exactly once, bit-exact against the oracle.
func TestSessionKillNineExactlyOnce(t *testing.T) {
	if os.Getenv("SYMMETER_SESSION_CHILD") == "1" {
		sessionChild()
		return
	}
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL semantics required")
	}
	if testing.Short() {
		t.Skip("subprocess crash drill")
	}
	dir := t.TempDir()
	// Reserve a loopback address the child can re-listen on after each kill.
	rsv, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := rsv.Addr().String()
	rsv.Close()

	startChild := func() *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run=TestSessionKillNineExactlyOnce$")
		cmd.Env = append(os.Environ(),
			"SYMMETER_SESSION_CHILD=1",
			"SYMMETER_SESSION_DIR="+dir,
			"SYMMETER_SESSION_ADDR="+addr)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// The child prints "ready" once it is listening.
		buf := make([]byte, 64)
		ready := make(chan error, 1)
		go func() {
			_, err := out.Read(buf)
			ready <- err
		}()
		select {
		case err := <-ready:
			if err != nil || !strings.HasPrefix(string(buf), "ready") {
				cmd.Process.Kill()
				t.Fatalf("child never came up: %q err=%v", buf, err)
			}
		case <-time.After(30 * time.Second):
			cmd.Process.Kill()
			t.Fatal("child start timed out")
		}
		return cmd
	}

	child := startChild()
	const meter, batches = 5, 30
	table := degradedTable(t)
	s, err := client.DialSession(addr, meter, client.SessionConfig{
		Backoff:    client.Backoff{Min: 5 * time.Millisecond, Max: 100 * time.Millisecond, Attempts: 400},
		AckTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PushTable(table); err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < batches; idx++ {
		if idx == 10 || idx == 20 {
			if err := child.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			child.Wait()
			child = startChild() // recovers the directory, re-listens
		}
		if err := s.Append(degradedFirstT(idx), 900, degradedSymbols(meter, idx, table)); err != nil {
			t.Fatalf("append %d across kills: %v", idx, err)
		}
	}
	s.Close()
	if s.Reconnects() < 2 {
		t.Fatalf("session reconnected %d times across two kills, want >= 2", s.Reconnects())
	}
	child.Process.Kill()
	child.Wait()

	// Every ack was backed by a synced WAL write: the recovered directory
	// must reproduce the full acked stream exactly once.
	eng, err := storage.Open(storage.Options{Dir: dir, Shards: 4, Sync: storage.SyncAlways, SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatalf("final recovery: %v", err)
	}
	defer eng.Close()
	requireExactlyOnce(t, eng.Store(), meter, table, batches)
	if got := eng.LastSeq(meter); got != batches+1 {
		t.Fatalf("recovered high-water mark %d, want %d", got, batches+1)
	}
}

// sessionChild is the re-exec'd server: a SyncAlways engine over the shared
// directory (acks imply fsync — what makes kill -9 survivable), serving the
// reserved address until the parent's SIGKILL.
func sessionChild() {
	eng, err := storage.Open(storage.Options{
		Dir: os.Getenv("SYMMETER_SESSION_DIR"), Shards: 4,
		Sync: storage.SyncAlways, SegmentBytes: 64 << 10,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "child open:", err)
		os.Exit(2)
	}
	svc := server.New(server.Config{Store: eng.Store()})
	svc.SetIngest(eng)
	if _, err := svc.Listen(os.Getenv("SYMMETER_SESSION_ADDR")); err != nil {
		fmt.Fprintln(os.Stderr, "child listen:", err)
		os.Exit(2)
	}
	fmt.Println("ready")
	select {} // SIGKILL is the only exit
}

// FuzzNetFaultIngest drives a Session through a fuzz-chosen fault schedule
// against a live server. The invariant holds for every schedule, including
// ones the backoff budget cannot absorb: the store ends bit-exact on the
// first k batches for some k between the acked count and the sent count —
// acked data is never lost, nothing commits twice, and no schedule may
// wedge the client past its deadline budget.
func FuzzNetFaultIngest(f *testing.F) {
	f.Add(uint8(2), uint8(0), uint8(3), uint16(600), uint8(3))
	f.Add(uint8(1), uint8(2), uint8(3), uint16(0), uint8(2))
	f.Add(uint8(2), uint8(1), uint8(4), uint16(700), uint8(4))
	f.Add(uint8(2), uint8(4), uint8(2), uint16(0), uint8(1))
	f.Add(uint8(1), uint8(0), uint8(2), uint16(30), uint8(3))
	table := fuzzTable()
	f.Fuzz(func(t *testing.T, opB, actionB, n uint8, afterBytes uint16, nb uint8) {
		op := netfault.Op(opB % 3)
		action := netfault.Action(actionB % 5)
		batches := int(nb%4) + 1
		fault := netfault.Fault{
			Op: op, N: int(n % 8), Action: action,
			AfterBytes: int64(afterBytes),
			Delay:      time.Duration(n%8) * 5 * time.Millisecond,
		}
		svc := server.New(server.Config{Shards: 4})
		addr, err := svc.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		inj := netfault.New(fault)
		const meter = 3
		s, err := client.DialSession(addr.String(), meter, client.SessionConfig{
			Backoff:    client.Backoff{Min: time.Millisecond, Max: 5 * time.Millisecond, Attempts: 8},
			AckTimeout: 100 * time.Millisecond,
			Dialer:     inj.Dial,
		})
		acked := 0
		if err == nil {
			if err := s.PushTable(table); err == nil {
				acked = 1
				for idx := 0; idx < batches; idx++ {
					if err := s.Append(degradedFirstT(idx), 900, degradedSymbols(meter, idx, table)); err != nil {
						break
					}
					acked++
				}
			}
			s.Close()
		}
		// Store state: the first k committed frames for some k in
		// [acked, sent] — stop-and-wait means no later frame can commit
		// before an earlier one is acked.
		hwm := int(svc.Store().LastSeq(meter))
		if hwm < acked {
			t.Fatalf("acked %d frames but server committed only %d — acked data lost", acked, hwm)
		}
		if hwm > batches+1 {
			t.Fatalf("server committed %d frames, only %d were ever sent", hwm, batches+1)
		}
		if hwm > 0 {
			requireExactlyOnce(t, svc.Store(), meter, table, hwm-1)
		}
	})
}

// fuzzTable builds the fuzz fixture table without a *testing.T.
func fuzzTable() *symbolic.Table {
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = float64(i * 7919 % 4000)
	}
	table, err := symbolic.Learn(symbolic.MethodMedian, vals, 16)
	if err != nil {
		panic(err)
	}
	return table
}

// TestSessionStats pins the Stats snapshot against the retry machinery: a
// failed first dial handshake consumes a backoff sleep (Retries,
// LastBackoff), and a reset mid-batch costs one reconnect and one replay —
// all visible in one snapshot that agrees with the legacy accessors.
func TestSessionStats(t *testing.T) {
	_, eng, addr := durableServer(t)
	inj := netfault.New(
		// Write 1 is the first connection's handshake: erroring it makes
		// DialSession back off and redial (a counted retry sleep).
		netfault.Fault{Op: netfault.OpWrite, N: 1, Action: netfault.Error},
		// A firing fault short-circuits later faults' counting, so this one
		// never sees write 1: its matches are the redialed handshake (1),
		// the table (2), and the first batch (3) — reset before any byte of
		// the batch lands → reconnect + replay.
		netfault.Fault{Op: netfault.OpWrite, N: 3, Action: netfault.Reset},
	)
	table := degradedTable(t)
	s := sessionRun(t, addr, inj, 11, table, 1)
	st := s.Stats()
	if st.Reconnects != s.Reconnects() || st.Replays != s.Replays() {
		t.Fatalf("Stats %+v disagrees with accessors (%d, %d)", st, s.Reconnects(), s.Replays())
	}
	if st.Reconnects != 1 || st.Replays != 1 {
		t.Fatalf("reconnects=%d replays=%d, want 1 and 1", st.Reconnects, st.Replays)
	}
	if st.Retries == 0 {
		t.Fatal("the failed first dial must count a backoff retry")
	}
	if st.LastBackoff <= 0 {
		t.Fatalf("LastBackoff = %v, want > 0 after a backoff sleep", st.LastBackoff)
	}
	requireExactlyOnce(t, eng.Store(), 11, table, 1)
}
