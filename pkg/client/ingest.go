package client

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"time"

	"symmeter/internal/symbolic"
	"symmeter/internal/transport"
)

// Ingestor is one ingest session: a meter streaming tables and symbol
// batches to a server. The wire protocol is one-way — the server answers
// nothing while the stream is healthy — so server-side refusals surface on
// the next write (connection torn down) or at Close; in both places the
// Ingestor reads the server's parting 'X' frame, so a refusal because the
// server's storage is degraded comes back as a typed ErrDegraded instead
// of a bare broken pipe. Like Client, an Ingestor is single-goroutine.
type Ingestor struct {
	conn    net.Conn
	bw      *bufio.Writer
	fr      *transport.FrameReader
	meterID uint64
	buf     []byte
	err     error
}

// verdictWait bounds how long a failing Ingestor waits for the server's
// parting verdict frame before settling for the raw transport error.
const verdictWait = 2 * time.Second

// DialIngest connects to a server's ingest listener and performs the
// handshake for meterID. The returned Ingestor owns the connection.
func DialIngest(addr string, meterID uint64) (*Ingestor, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	ing, err := NewIngestor(conn, meterID)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return ing, nil
}

// NewIngestor wraps an established connection and performs the handshake.
func NewIngestor(conn net.Conn, meterID uint64) (*Ingestor, error) {
	ing := &Ingestor{
		conn:    conn,
		bw:      bufio.NewWriter(conn),
		fr:      transport.NewFrameReader(bufio.NewReader(conn)),
		meterID: meterID,
	}
	if err := transport.WriteHandshake(ing.bw, meterID); err != nil {
		return nil, err
	}
	if err := ing.bw.Flush(); err != nil {
		return nil, ing.fail(err)
	}
	return ing, nil
}

// MeterID returns the session's meter.
func (ing *Ingestor) MeterID() uint64 { return ing.meterID }

// PushTable sends a lookup table; the first one must precede any batch.
func (ing *Ingestor) PushTable(t *symbolic.Table) error {
	if ing.err != nil {
		return ing.err
	}
	body := symbolic.MarshalTable(t)
	var hdr [5]byte
	hdr[0] = transport.FrameTable
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(body)))
	ing.buf = append(append(ing.buf[:0], hdr[:]...), body...)
	return ing.send()
}

// Append sends one symbol batch: timestamps firstT + i*window, symbols as
// given (all at the current table's level). The server acknowledges nothing
// on success; an error — typed ErrDegraded when the server refused the
// write because its storage is degraded — means the batch was NOT stored.
func (ing *Ingestor) Append(firstT, window int64, symbols []symbolic.Symbol) error {
	if ing.err != nil {
		return ing.err
	}
	var hdr [21]byte
	hdr[0] = transport.FrameSymbol
	binary.BigEndian.PutUint64(hdr[5:13], uint64(firstT))
	binary.BigEndian.PutUint64(hdr[13:21], uint64(window))
	buf := append(ing.buf[:0], hdr[:]...)
	buf, err := symbolic.AppendPack(buf, symbols)
	if err != nil {
		return err // caller bug (mixed levels); the stream is untouched
	}
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(buf)-5))
	ing.buf = buf
	return ing.send()
}

// send writes the assembled frame and flushes it to the socket, converting
// a transport failure into the server's verdict when one was sent.
func (ing *Ingestor) send() error {
	if _, err := ing.bw.Write(ing.buf); err != nil {
		return ing.fail(err)
	}
	if err := ing.bw.Flush(); err != nil {
		return ing.fail(err)
	}
	return nil
}

// Close ends the stream ('E' frame) and waits for the server's reaction: a
// clean EOF on success, or a parting 'X' verdict (typed ErrDegraded) when
// the session was refused. Always closes the connection.
func (ing *Ingestor) Close() error {
	if ing.conn == nil {
		return nil
	}
	var err error
	if ing.err == nil {
		ing.buf = append(ing.buf[:0], transport.FrameEnd, 0, 0, 0, 0)
		if _, werr := ing.bw.Write(ing.buf); werr == nil {
			if werr = ing.bw.Flush(); werr != nil {
				err = ing.fail(werr)
			}
		} else {
			err = ing.fail(werr)
		}
		if err == nil {
			err = ing.readVerdict(true)
			if err != nil {
				ing.err = err
			}
		}
	} else {
		err = ing.err
	}
	cerr := ing.conn.Close()
	ing.conn = nil
	if ing.err == nil {
		ing.err = errors.New("client: ingestor closed")
	}
	if err != nil {
		return err
	}
	return cerr
}

// fail poisons the Ingestor. Before settling on the raw transport error it
// listens briefly for the server's parting 'X' frame — the server writes
// its verdict before closing, so a torn write usually has a typed cause
// waiting in the read direction.
func (ing *Ingestor) fail(err error) error {
	if ing.err != nil {
		return ing.err
	}
	if verr := ing.readVerdict(false); verr != nil {
		err = verr
	}
	ing.err = err
	return ing.err
}

// readVerdict drains the read direction: an 'X' frame decodes into the
// typed server verdict; EOF means the server closed without complaint
// (nil). atClose distinguishes the orderly shutdown read (EOF expected)
// from the post-failure probe (any read trouble defers to the original
// error, reported as nil here).
func (ing *Ingestor) readVerdict(atClose bool) error {
	if err := ing.conn.SetReadDeadline(time.Now().Add(verdictWait)); err != nil {
		return nil
	}
	typ, payload, err := ing.fr.Next()
	if err != nil {
		if atClose && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("client: reading close verdict: %w", err)
		}
		return nil
	}
	if typ != transport.FrameQueryError {
		if atClose {
			return fmt.Errorf("client: unexpected %#x frame on ingest stream", typ)
		}
		return nil
	}
	var res transport.QueryResult
	if derr := transport.DecodeQueryResponse(typ, payload, &res); derr != nil {
		var qe *transport.QueryError
		if errors.As(derr, &qe) {
			return derr
		}
	}
	return nil
}

// Backoff retries an operation while the server answers with a typed
// retryable refusal — degraded storage, shard overload, graceful drain, or
// a still-registered meter (see Retryable): at most Attempts tries with
// full-jitter exponential delay, each sleep drawn uniformly from
// [0, min(Max, Min·2ⁱ)]. Zero fields pick defaults (10ms, 1s, 10). Any
// other error — including success — returns immediately: only the typed
// "retry later, nothing was written" verdicts are worth waiting out. The
// jitter is what keeps a refused fleet from reconverging in lockstep: an
// overloaded shard that refuses a thousand sensors at once must not get all
// thousand back on the same tick.
type Backoff struct {
	Min      time.Duration
	Max      time.Duration
	Attempts int
}

func (b Backoff) attempts() int {
	if b.Attempts <= 0 {
		return 10
	}
	return b.Attempts
}

// delay returns the full-jitter sleep before retry attempt i (0-based).
func (b Backoff) delay(i int) time.Duration {
	min, max := b.Min, b.Max
	if min <= 0 {
		min = 10 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	cap := min << uint(i)
	if cap > max || cap <= 0 { // <= 0: shift overflow
		cap = max
	}
	return time.Duration(rand.Int64N(int64(cap) + 1))
}

// Retry runs fn under the backoff policy and returns its last error.
func (b Backoff) Retry(fn func() error) error {
	attempts := b.attempts()
	var err error
	for i := 0; i < attempts; i++ {
		if err = fn(); err == nil || !Retryable(err) {
			return err
		}
		if i == attempts-1 {
			break
		}
		time.Sleep(b.delay(i))
	}
	return err
}
