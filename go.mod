module symmeter

go 1.24
